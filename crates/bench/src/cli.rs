//! Plain `std::env::args` flag parsing for the sweep binaries.
//!
//! `bin/matrix` and `bin/all` accept the same sweep-shaping flags
//! instead of hardcoding their fan-out:
//!
//! * `--threads N` — size of the process-wide worker pool (must come
//!   before the first sweep runs; applied via
//!   `tp_sched::configure_global_threads`).
//! * `--cells SPEC` — restrict the matrix to the given cell indices,
//!   e.g. `--cells 0..7`, `--cells 3`, `--cells 0..4,9,12..14`
//!   (`a..b` is half-open). This is also how a sweep is sharded across
//!   processes: give each worker a disjoint slice.
//! * `--models N` — use only the first `N` of the default time models.
//! * `--replay-check` — re-enable the paranoid double-run per
//!   (model, secret) instead of the certified single-run default: every
//!   NI baseline comes from a plain replay, auditing the transparency
//!   certification. Reports are bit-identical to certified mode.
//!
//! * `--cache PATH` — back the sweep with the content-addressed proof
//!   cache (`tp_core::cache`): load `PATH` if it exists, replay
//!   validated hits, prove only changed cells, and write the updated
//!   cache back. Reports stay byte-identical to an uncached run; the
//!   hit/re-prove statistics go to stderr. A cache file that fails
//!   wire parsing exits with [`EXIT_MALFORMED`]; entries that parse
//!   but fail validation are rejected and re-proved (exit 0).
//! * `--journal PATH` — crash-safe checkpointing (`tp_core::journal`):
//!   start a fresh journal at `PATH` and append every proved cell as
//!   it completes, fsynced, so a killed sweep loses at most the cell
//!   in flight.
//! * `--resume PATH` — reload a journal a killed `--journal` run left
//!   behind (applying the torn-tail rule), replay records that survive
//!   the cache validation gauntlet, re-prove the rest, and keep
//!   journaling to `PATH`. Output is byte-identical to an
//!   uninterrupted run. A journal that is corrupt *before* its tail
//!   exits with [`EXIT_MALFORMED`]. Mutually exclusive with `--cache`
//!   (the journal already carries the same evidence).
//!
//! Telemetry flags (PR 8), all off by default so the proof hot path
//! keeps its null-sink fast path:
//!
//! * `--metrics` — install a counting telemetry sink and print the
//!   human summary table (pool/cache/exhaustive counters, span
//!   aggregates) to stderr after the run.
//! * `--trace-out FILE` — install a JSON-lines tracing sink and write
//!   every span plus a machine-readable run manifest to `FILE`.
//! * `--progress` — heartbeat to stderr (cells completed / total, ETA)
//!   while a grid runs. An explicit flag is always honored — including
//!   under redirection, so daemonised/CI runs can log heartbeats; only
//!   the default-on behavior (no flag) requires stderr to be a TTY.
//!
//! `bin/matrix` additionally understands the scale-out modes:
//!
//! * `--worker` — prove the selected cells and print wire records
//!   (`tp_core::wire`) to stdout instead of a report.
//! * `--merge FILE...` — parse worker outputs and print the merged
//!   report, identical to a single-process run over the same cells.

/// Exit code for usage errors (unknown flags, bad `--cells` specs).
pub const EXIT_USAGE: i32 = 2;

/// Exit code for malformed *input* — a `--cache` file that fails wire
/// parsing. Distinct from [`EXIT_USAGE`] and, crucially, from the
/// silent-degradation path: a cache entry that parses but fails the
/// validation gauntlet is rejected and re-proved (exit 0, counted in
/// the stderr `cache:` stats), while a file the parser cannot read at
/// all is untrusted input and aborts loudly. `tp-serve` mirrors the
/// same split as protocol codes (`code=malformed` vs a normal `DONE`
/// with nonzero `rejected`).
pub const EXIT_MALFORMED: i32 = 3;

/// Parsed command line for the sweep binaries.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct SweepArgs {
    /// `--threads N`.
    pub threads: Option<usize>,
    /// `--cells SPEC`, expanded to explicit indices (ascending, unique).
    pub cells: Option<Vec<usize>>,
    /// `--models N`.
    pub models: Option<usize>,
    /// `--replay-check`.
    pub replay_check: bool,
    /// `--cache PATH`.
    pub cache: Option<String>,
    /// `--journal PATH` (fresh journal).
    pub journal: Option<String>,
    /// `--resume PATH` (reload a journal, then keep journaling).
    pub resume: Option<String>,
    /// `--worker`.
    pub worker: bool,
    /// `--merge FILE...` (everything after the flag).
    pub merge: Vec<String>,
    /// `--metrics`.
    pub metrics: bool,
    /// `--trace-out FILE`.
    pub trace_out: Option<String>,
    /// `--progress`.
    pub progress: bool,
}

impl SweepArgs {
    /// Parse `args` (without the program name). Returns an error string
    /// suitable for printing next to the usage text.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<SweepArgs, String> {
        let mut out = SweepArgs::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--threads" => {
                    let v = args.next().ok_or("--threads needs a value")?;
                    let n: usize = v.parse().map_err(|_| format!("bad --threads {v:?}"))?;
                    if n == 0 {
                        return Err("--threads must be at least 1".into());
                    }
                    out.threads = Some(n);
                }
                "--cells" => {
                    let v = args.next().ok_or("--cells needs a value")?;
                    out.cells = Some(parse_cell_spec(&v)?);
                }
                "--models" => {
                    let v = args.next().ok_or("--models needs a value")?;
                    let n: usize = v.parse().map_err(|_| format!("bad --models {v:?}"))?;
                    if n == 0 {
                        return Err("--models must be at least 1".into());
                    }
                    out.models = Some(n);
                }
                "--replay-check" => out.replay_check = true,
                "--cache" => {
                    let v = args.next().ok_or("--cache needs a path")?;
                    out.cache = Some(v);
                }
                "--journal" => {
                    let v = args.next().ok_or("--journal needs a path")?;
                    out.journal = Some(v);
                }
                "--resume" => {
                    let v = args.next().ok_or("--resume needs a path")?;
                    out.resume = Some(v);
                }
                "--worker" => out.worker = true,
                "--metrics" => out.metrics = true,
                "--trace-out" => {
                    let v = args.next().ok_or("--trace-out needs a path")?;
                    out.trace_out = Some(v);
                }
                "--progress" => out.progress = true,
                "--merge" => {
                    out.merge.extend(args.by_ref());
                    if out.merge.is_empty() {
                        return Err("--merge needs at least one file".into());
                    }
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        if out.worker && !out.merge.is_empty() {
            return Err("--worker and --merge are mutually exclusive".into());
        }
        if out.cache.is_some() && !out.merge.is_empty() {
            return Err("--cache does not apply to --merge".into());
        }
        if out.trace_out.is_some() && !out.merge.is_empty() {
            return Err("--trace-out does not apply to --merge".into());
        }
        if out.journal.is_some() && out.resume.is_some() {
            return Err("--journal starts fresh and --resume reloads; pick one".into());
        }
        if (out.journal.is_some() || out.resume.is_some()) && out.cache.is_some() {
            return Err("--cache and --journal/--resume are mutually exclusive".into());
        }
        if (out.journal.is_some() || out.resume.is_some()) && !out.merge.is_empty() {
            return Err("--journal/--resume do not apply to --merge".into());
        }
        Ok(out)
    }

    /// The cell indices to run given a matrix of `total` cells: the
    /// `--cells` selection (validated against `total`) or all of them.
    pub fn select_cells(&self, total: usize) -> Result<Vec<usize>, String> {
        match &self.cells {
            None => Ok((0..total).collect()),
            Some(sel) => {
                if let Some(&bad) = sel.iter().find(|&&i| i >= total) {
                    return Err(format!(
                        "--cells index {bad} out of range (matrix has {total} cells)"
                    ));
                }
                Ok(sel.clone())
            }
        }
    }
}

/// Expand a cell spec: comma-separated indices and half-open `a..b`
/// ranges, e.g. `0..4,9,12..14` → `[0,1,2,3,9,12,13]`. Duplicates are
/// rejected so shard specs cannot silently double-prove a cell.
pub fn parse_cell_spec(spec: &str) -> Result<Vec<usize>, String> {
    let mut out = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            return Err(format!("empty segment in cell spec {spec:?}"));
        }
        if let Some((a, b)) = part.split_once("..") {
            let a: usize = a.parse().map_err(|_| format!("bad range start {a:?}"))?;
            let b: usize = b.parse().map_err(|_| format!("bad range end {b:?}"))?;
            if a >= b {
                return Err(format!("empty range {part:?}"));
            }
            out.extend(a..b);
        } else {
            out.push(
                part.parse()
                    .map_err(|_| format!("bad cell index {part:?}"))?,
            );
        }
    }
    let mut seen = std::collections::BTreeSet::new();
    for &i in &out {
        if !seen.insert(i) {
            return Err(format!("cell index {i} selected twice in {spec:?}"));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> impl Iterator<Item = String> {
        v.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn parses_sweep_shaping_flags() {
        let a = SweepArgs::parse(strs(&[
            "--threads",
            "4",
            "--cells",
            "0..3,7",
            "--models",
            "2",
        ]))
        .unwrap();
        assert_eq!(a.threads, Some(4));
        assert_eq!(a.cells, Some(vec![0, 1, 2, 7]));
        assert_eq!(a.models, Some(2));
        assert!(!a.worker);
    }

    #[test]
    fn parses_replay_check() {
        let a = SweepArgs::parse(strs(&["--replay-check"])).unwrap();
        assert!(a.replay_check);
        assert!(!SweepArgs::default().replay_check);
        // Composes with worker mode: an audit shard is a valid shard.
        let w = SweepArgs::parse(strs(&["--worker", "--replay-check"])).unwrap();
        assert!(w.worker && w.replay_check);
    }

    #[test]
    fn parses_cache_flag() {
        let a = SweepArgs::parse(strs(&["--cache", "proofs.cache"])).unwrap();
        assert_eq!(a.cache.as_deref(), Some("proofs.cache"));
        assert_eq!(SweepArgs::default().cache, None);
        assert!(SweepArgs::parse(strs(&["--cache"])).is_err());
        // A cached shard is a valid shard; a cached merge is not (the
        // merge proves nothing, so a cache could neither hit nor fill).
        let w = SweepArgs::parse(strs(&["--worker", "--cache", "c"])).unwrap();
        assert!(w.worker && w.cache.is_some());
        assert!(SweepArgs::parse(strs(&["--cache", "c", "--merge", "a"])).is_err());
    }

    #[test]
    fn parses_journal_flags() {
        let j = SweepArgs::parse(strs(&["--journal", "run.journal"])).unwrap();
        assert_eq!(j.journal.as_deref(), Some("run.journal"));
        assert_eq!(j.resume, None);
        let r = SweepArgs::parse(strs(&["--resume", "run.journal"])).unwrap();
        assert_eq!(r.resume.as_deref(), Some("run.journal"));
        assert!(SweepArgs::parse(strs(&["--journal"])).is_err());
        assert!(SweepArgs::parse(strs(&["--resume"])).is_err());
        // A journaled worker shard is a valid shard.
        let w = SweepArgs::parse(strs(&["--worker", "--journal", "j"])).unwrap();
        assert!(w.worker && w.journal.is_some());
        // Exclusivity: fresh-vs-resume, cache, merge.
        assert!(SweepArgs::parse(strs(&["--journal", "a", "--resume", "a"])).is_err());
        assert!(SweepArgs::parse(strs(&["--journal", "a", "--cache", "c"])).is_err());
        assert!(SweepArgs::parse(strs(&["--resume", "a", "--cache", "c"])).is_err());
        assert!(SweepArgs::parse(strs(&["--journal", "a", "--merge", "m"])).is_err());
        assert!(SweepArgs::parse(strs(&["--resume", "a", "--merge", "m"])).is_err());
    }

    #[test]
    fn parses_worker_and_merge_modes() {
        let w = SweepArgs::parse(strs(&["--worker", "--cells", "5"])).unwrap();
        assert!(w.worker);
        let m = SweepArgs::parse(strs(&["--merge", "a.txt", "b.txt"])).unwrap();
        assert_eq!(m.merge, vec!["a.txt", "b.txt"]);
        assert!(SweepArgs::parse(strs(&["--worker", "--merge", "a"])).is_err());
    }

    #[test]
    fn parses_telemetry_flags() {
        let a =
            SweepArgs::parse(strs(&["--metrics", "--trace-out", "t.jsonl", "--progress"])).unwrap();
        assert!(a.metrics && a.progress);
        assert_eq!(a.trace_out.as_deref(), Some("t.jsonl"));
        let d = SweepArgs::default();
        assert!(!d.metrics && !d.progress && d.trace_out.is_none());
        assert!(SweepArgs::parse(strs(&["--trace-out"])).is_err());
        // A traced worker shard is fine; a traced merge proves nothing.
        let w = SweepArgs::parse(strs(&["--worker", "--trace-out", "t"])).unwrap();
        assert!(w.worker && w.trace_out.is_some());
        assert!(SweepArgs::parse(strs(&["--trace-out", "t", "--merge", "a"])).is_err());
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(parse_cell_spec("3..3").is_err());
        assert!(parse_cell_spec("1,1").is_err());
        assert!(parse_cell_spec("x").is_err());
        assert!(parse_cell_spec("0..2,1").is_err(), "overlap is a duplicate");
        assert!(SweepArgs::parse(strs(&["--threads", "0"])).is_err());
        assert!(SweepArgs::parse(strs(&["--bogus"])).is_err());
    }

    #[test]
    fn select_cells_validates_range() {
        let a = SweepArgs::parse(strs(&["--cells", "18..21"])).unwrap();
        assert_eq!(a.select_cells(21).unwrap(), vec![18, 19, 20]);
        assert!(a.select_cells(19).is_err());
        let none = SweepArgs::default();
        assert_eq!(none.select_cells(3).unwrap(), vec![0, 1, 2]);
    }
}
