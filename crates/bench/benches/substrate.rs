//! Std-only microbenches for the simulator substrate itself: cache
//! access, TLB lookup, flush, kernel step and the digesting used by the
//! invariant checkers. These put numbers on the cost of "proof by
//! exhaustive checking" — the reproduction's analogue of proof effort.

use std::hint::black_box;

use tp_hw::cache::{Cache, CacheConfig};
use tp_hw::machine::{Machine, MachineConfig};
use tp_hw::tlb::{Tlb, TlbEntry};
use tp_hw::types::{Asid, CoreId, DomainTag, PAddr, VAddr};
use tp_kernel::config::{DomainSpec, KernelConfig};
use tp_kernel::kernel::System;
use tp_kernel::program::IdleProgram;

/// Time `iters` iterations of `f` and print ns/op.
fn bench<R>(name: &str, iters: u32, f: impl FnMut() -> R) {
    let (total, _min) = tp_bench::time_iters(iters, f);
    println!(
        "{name:<32} {iters:>9} iters  {:>10.1} ns/op",
        total.as_nanos() as f64 / iters as f64
    );
}

fn main() {
    let mut cache = Cache::new(CacheConfig::llc());
    let mut i = 0u64;
    bench("cache/access_llc", 100_000, || {
        i = i.wrapping_add(0x1040);
        cache.access(PAddr(black_box(i) % (1 << 26)), i % 3 == 0, DomainTag(0))
    });
    bench("cache/flush_llc", 1_000, || {
        for k in 0..1024u64 {
            cache.access(PAddr(k * 64), true, DomainTag(0));
        }
        black_box(cache.flush_all())
    });
    bench("cache/state_digest_llc", 10_000, || {
        black_box(cache.state_digest())
    });

    let mut tlb = Tlb::new(64);
    for v in 0..64 {
        tlb.insert(TlbEntry {
            asid: Asid(1),
            vpn: v,
            pfn: v,
            writable: true,
            global: false,
            owner: DomainTag(0),
        });
    }
    let mut v = 0u64;
    bench("tlb/lookup_hit", 100_000, || {
        v = (v + 1) % 64;
        tlb.lookup(Asid(1), VAddr(black_box(v) << 12))
    });

    let mut m = Machine::new(MachineConfig::single_core());
    let mut a = 0u64;
    bench("machine/access_phys", 100_000, || {
        a = a.wrapping_add(0x40);
        m.access_phys(
            CoreId(0),
            PAddr(black_box(a) % (1 << 22)),
            false,
            false,
            DomainTag(0),
        )
    });
    bench("machine/flush_core_local", 10_000, || {
        black_box(m.flush_core_local(CoreId(0)))
    });

    let mut sys = System::new(
        MachineConfig::single_core(),
        KernelConfig::new(vec![
            DomainSpec::new(Box::new(IdleProgram)),
            DomainSpec::new(Box::new(IdleProgram)),
        ]),
    )
    .unwrap();
    bench("system/steps_per_sec", 100_000, || black_box(sys.step()));
    bench("system/build_system", 1_000, || {
        System::new(
            MachineConfig::single_core(),
            KernelConfig::new(vec![
                DomainSpec::new(Box::new(IdleProgram)),
                DomainSpec::new(Box::new(IdleProgram)),
            ]),
        )
        .unwrap()
    });
}
