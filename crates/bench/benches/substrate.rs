//! Criterion microbenches for the simulator substrate itself: cache
//! access, TLB lookup, flush, predictor resolve, kernel step and the
//! digesting used by the invariant checkers. These put numbers on the
//! cost of "proof by exhaustive checking" — the reproduction's analogue
//! of proof effort.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tp_hw::cache::{Cache, CacheConfig};
use tp_hw::machine::{Machine, MachineConfig};
use tp_hw::tlb::{Tlb, TlbEntry};
use tp_hw::types::{Asid, CoreId, DomainTag, PAddr, VAddr};
use tp_kernel::config::{DomainSpec, KernelConfig};
use tp_kernel::kernel::System;
use tp_kernel::program::IdleProgram;

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    let mut cache = Cache::new(CacheConfig::llc());
    let mut i = 0u64;
    g.bench_function("access_llc", |b| {
        b.iter(|| {
            i = i.wrapping_add(0x1040);
            cache.access(PAddr(black_box(i) % (1 << 26)), i % 3 == 0, DomainTag(0))
        })
    });
    g.bench_function("flush_llc", |b| {
        b.iter(|| {
            for k in 0..1024u64 {
                cache.access(PAddr(k * 64), true, DomainTag(0));
            }
            black_box(cache.flush_all())
        })
    });
    g.bench_function("state_digest_llc", |b| {
        b.iter(|| black_box(cache.state_digest()))
    });
    g.finish();
}

fn bench_tlb(c: &mut Criterion) {
    let mut g = c.benchmark_group("tlb");
    let mut tlb = Tlb::new(64);
    for v in 0..64 {
        tlb.insert(TlbEntry {
            asid: Asid(1),
            vpn: v,
            pfn: v,
            writable: true,
            global: false,
            owner: DomainTag(0),
        });
    }
    let mut v = 0u64;
    g.bench_function("lookup_hit", |b| {
        b.iter(|| {
            v = (v + 1) % 64;
            tlb.lookup(Asid(1), VAddr(black_box(v) << 12))
        })
    });
    g.finish();
}

fn bench_machine(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine");
    let mut m = Machine::new(MachineConfig::single_core());
    let mut i = 0u64;
    g.bench_function("access_phys", |b| {
        b.iter(|| {
            i = i.wrapping_add(0x40);
            m.access_phys(
                CoreId(0),
                PAddr(black_box(i) % (1 << 22)),
                false,
                false,
                DomainTag(0),
            )
        })
    });
    g.bench_function("flush_core_local", |b| {
        b.iter(|| black_box(m.flush_core_local(CoreId(0))))
    });
    g.finish();
}

fn bench_system(c: &mut Criterion) {
    let mut g = c.benchmark_group("system");
    g.bench_function("steps_per_sec", |b| {
        let mut sys = System::new(
            MachineConfig::single_core(),
            KernelConfig::new(vec![
                DomainSpec::new(Box::new(IdleProgram)),
                DomainSpec::new(Box::new(IdleProgram)),
            ]),
        )
        .unwrap();
        b.iter(|| black_box(sys.step()))
    });
    g.bench_function("build_system", |b| {
        b.iter(|| {
            System::new(
                MachineConfig::single_core(),
                KernelConfig::new(vec![
                    DomainSpec::new(Box::new(IdleProgram)),
                    DomainSpec::new(Box::new(IdleProgram)),
                ]),
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(
    substrate,
    bench_cache,
    bench_tlb,
    bench_machine,
    bench_system
);
criterion_main!(substrate);
