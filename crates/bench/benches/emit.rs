//! Microbench for the observation emit hot loop: the per-event cost of
//! each sink shape the kernel can drive.
//!
//! Three variants, same event stream:
//!
//! * `boxed` — the pre-refactor shape: a `Box<dyn ObsSink>` virtual
//!   call per event;
//! * `static` — [`ObsSinkKind`] enum dispatch per event (the shape the
//!   kernel's emit path now compiles to);
//! * `batched` — [`ObsSinkKind::record_batch`] with step-sized batches:
//!   one dispatch amortised over the whole batch.
//!
//! All three must (and do) produce the same rolling digest — the
//! `hw/tests/properties.rs` proptest pins that; this bench prices it.

use std::hint::black_box;

use tp_hw::obs::{DigestSink, ObsEvent, ObsSink, ObsSinkKind};
use tp_hw::types::Cycles;

/// Time `iters` iterations of `f` and print ns/op.
fn bench<R>(name: &str, iters: u32, f: impl FnMut() -> R) {
    let (total, _min) = tp_bench::time_iters(iters, f);
    println!(
        "{name:<32} {iters:>9} iters  {:>10.1} ns/op",
        total.as_nanos() as f64 / iters as f64
    );
}

/// A deterministic event stream shaped like a monitored run: mostly
/// clock reads, some IPC deliveries, the odd fault.
fn stream(n: usize) -> Vec<ObsEvent> {
    (0..n)
        .map(|i| match i % 7 {
            5 => ObsEvent::IpcRecv {
                msg: i as u64,
                at: Cycles(i as u64 * 3),
            },
            6 => ObsEvent::Fault,
            _ => ObsEvent::Clock(Cycles(i as u64)),
        })
        .collect()
}

fn main() {
    const EVENTS: usize = 4096;
    const BATCH: usize = 2; // the fetch-fault step emits [Fault, Halted]
    let events = stream(EVENTS);

    let mut boxed: Box<dyn ObsSink> = Box::new(DigestSink::default());
    bench("emit/boxed_dyn_per_event", 2_000, || {
        for e in &events {
            boxed.record(*e);
        }
        black_box(boxed.digest())
    });

    let mut sink = ObsSinkKind::from(DigestSink::default());
    bench("emit/static_per_event", 2_000, || {
        for e in &events {
            sink.record(*e);
        }
        black_box(sink.digest())
    });

    let mut sink = ObsSinkKind::from(DigestSink::default());
    bench("emit/static_batched", 2_000, || {
        for chunk in events.chunks(BATCH) {
            sink.record_batch(chunk);
        }
        black_box(sink.digest())
    });

    // The same three digests must agree: a bench that measured
    // divergent sinks would be pricing different work.
    let reference = {
        let mut s = DigestSink::default();
        for e in &events {
            s.record(*e);
        }
        s.digest()
    };
    let mut a = ObsSinkKind::from(DigestSink::default());
    let mut b: Box<dyn ObsSink> = Box::new(DigestSink::default());
    for chunk in events.chunks(BATCH) {
        a.record_batch(chunk);
        for e in chunk {
            b.record(*e);
        }
    }
    assert_eq!(a.digest(), reference, "batched static dispatch diverged");
    assert_eq!(b.digest(), reference, "boxed dispatch diverged");
    println!("digest agreement across all dispatch shapes: ok");
}
