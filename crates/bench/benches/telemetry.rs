//! Microbench for the telemetry fast path: what a counter bump and a
//! span emission cost under each sink, and — the number the proof hot
//! path actually pays — what they cost when telemetry is *off*.
//!
//! Three variants per primitive:
//!
//! * `null` — the default [`TelemetrySink::Null`]: `count()` is one
//!   relaxed atomic load, `span_start()` returns `None` without reading
//!   the clock. This is the price every uninstrumented run pays.
//! * `counters` — counting sink: one relaxed load + one `fetch_add`.
//! * `json_lines` — tracing sink: counting plus a formatted trace line
//!   behind a mutex (spans only; counters never touch the buffer).
//!
//! The CI bench step runs this next to `emit.rs`; the null numbers are
//! the regression canary for "telemetry crept onto the hot path".

use std::hint::black_box;

use tp_telemetry::{Counter, SpanKind, TelemetrySink};

/// Time `iters` iterations of `f` and print ns/op.
fn bench<R>(name: &str, iters: u32, f: impl FnMut() -> R) {
    let (total, _min) = tp_bench::time_iters(iters, f);
    println!(
        "{name:<32} {iters:>9} iters  {:>10.1} ns/op",
        total.as_nanos() as f64 / iters as f64
    );
}

fn main() {
    const OPS: usize = 4096;

    // --- Null sink: the disabled fast path. ---
    tp_telemetry::install(TelemetrySink::Null);
    bench("telemetry/count_null", 5_000, || {
        for _ in 0..OPS {
            tp_telemetry::count(black_box(Counter::PoolSubmitted));
        }
    });
    bench("telemetry/span_null", 5_000, || {
        for i in 0..OPS {
            if let Some(start) = tp_telemetry::span_start() {
                tp_telemetry::span(SpanKind::Prove, i, None, start);
            }
        }
    });
    assert!(
        tp_telemetry::snapshot().is_none(),
        "the null sink must record nothing"
    );

    // --- Counting sink. ---
    tp_telemetry::install(TelemetrySink::counters());
    bench("telemetry/count_counters", 5_000, || {
        for _ in 0..OPS {
            tp_telemetry::count(black_box(Counter::PoolSubmitted));
        }
    });
    bench("telemetry/span_counters", 2_000, || {
        for i in 0..OPS {
            if let Some(start) = tp_telemetry::span_start() {
                tp_telemetry::span(SpanKind::Prove, i, None, start);
            }
        }
    });
    let snap = tp_telemetry::snapshot().expect("counting sink snapshots");
    assert!(
        snap.counter(Counter::PoolSubmitted) > 0 && snap.span(SpanKind::Prove).0 > 0,
        "the counting sink must have recorded the benched ops"
    );

    // --- Tracing sink (spans also write a JSON line). ---
    tp_telemetry::install(TelemetrySink::json_lines());
    bench("telemetry/count_json_lines", 5_000, || {
        for _ in 0..OPS {
            tp_telemetry::count(black_box(Counter::PoolSubmitted));
        }
    });
    bench("telemetry/span_json_lines", 200, || {
        for i in 0..OPS {
            if let Some(start) = tp_telemetry::span_start() {
                tp_telemetry::span(SpanKind::Prove, i, None, start);
            }
        }
    });
    let trace = tp_telemetry::take_trace().expect("tracing sink buffers");
    assert!(
        trace.lines().count() >= OPS && trace.starts_with("{\"t\":\"span\""),
        "the tracing sink must have buffered one line per span"
    );

    // Leave the process the way every binary starts: telemetry off.
    tp_telemetry::install(TelemetrySink::Null);
    println!("sink state restored to null: ok");
}
