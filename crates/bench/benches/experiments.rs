//! Criterion benches timing each experiment's end-to-end runner
//! (E1..E11). These regenerate the paper-claim artefacts while measuring
//! how long the reproduction takes to produce them — useful both as a
//! performance regression net for the simulator and as a single
//! `cargo bench` entry point that exercises every experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tp_attacks::experiments as exp;
use tp_hw::clock::TimeModel;
use tp_kernel::config::{Mechanism, TimeProtConfig};

fn bench_e1_downgrader(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_downgrader");
    g.sample_size(10);
    g.bench_function("leaky", |b| {
        b.iter(|| exp::e1_delivery_time(false, black_box(0xff00ff), TimeModel::intel_like()))
    });
    g.bench_function("deterministic", |b| {
        b.iter(|| exp::e1_delivery_time(true, black_box(0xff00ff), TimeModel::intel_like()))
    });
    g.finish();
}

fn bench_e2_prime_probe(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_l1_prime_probe");
    g.sample_size(10);
    g.bench_function("open", |b| {
        b.iter(|| {
            exp::e2_transmit_once(
                TimeProtConfig::off(),
                black_box(21),
                TimeModel::intel_like(),
            )
        })
    });
    g.bench_function("closed", |b| {
        b.iter(|| {
            exp::e2_transmit_once(
                TimeProtConfig::full(),
                black_box(21),
                TimeModel::intel_like(),
            )
        })
    });
    g.finish();
}

fn bench_e3_llc(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_llc_concurrent");
    g.sample_size(10);
    g.bench_function("shared_colours", |b| {
        b.iter(|| exp::e3_transmit_once(false, black_box(5), TimeModel::intel_like()))
    });
    g.bench_function("disjoint_colours", |b| {
        b.iter(|| exp::e3_transmit_once(true, black_box(5), TimeModel::intel_like()))
    });
    g.finish();
}

fn bench_e4_switch(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_switch_latency");
    g.sample_size(10);
    g.bench_function("unpadded_sweep", |b| {
        b.iter(|| exp::e4_switch_latency(false, black_box(&[0, 96, 192])))
    });
    g.bench_function("padded_sweep", |b| {
        b.iter(|| exp::e4_switch_latency(true, black_box(&[0, 96, 192])))
    });
    g.finish();
}

fn bench_e5_irq(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_irq_channel");
    g.sample_size(10);
    let delay = exp::e5_victim_slice_delays()[0];
    g.bench_function("unpartitioned", |b| {
        b.iter(|| exp::e5_transmit_once(false, true, black_box(delay), TimeModel::intel_like()))
    });
    g.bench_function("partitioned", |b| {
        b.iter(|| exp::e5_transmit_once(true, true, black_box(delay), TimeModel::intel_like()))
    });
    g.finish();
}

fn bench_e6_kclone(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_kernel_clone");
    g.sample_size(10);
    g.bench_function("shared_image", |b| {
        b.iter(|| exp::e6_syscall_latency(false, true, TimeModel::intel_like()))
    });
    g.bench_function("cloned_image", |b| {
        b.iter(|| exp::e6_syscall_latency(true, true, TimeModel::intel_like()))
    });
    g.finish();
}

fn bench_e7_proof(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_proof");
    g.sample_size(10);
    g.bench_function("ni_check_full", |b| {
        b.iter(|| tp_core::check_noninterference(&tp_bench::canonical_scenario(None)))
    });
    g.finish();
}

fn bench_e8_tlb(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_tlb_theorem");
    g.bench_function("randomised_rounds", |b| {
        b.iter(|| tp_bench::report_e8(black_box(3)))
    });
    g.finish();
}

fn bench_e9_algorithmic(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_algorithmic");
    g.sample_size(10);
    g.bench_function("padded_delivery", |b| {
        b.iter(|| exp::e1_delivery_time(true, black_box(u64::MAX), TimeModel::intel_like()))
    });
    g.finish();
}

fn bench_e10_interconnect(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_interconnect");
    g.sample_size(10);
    g.bench_function("no_mitigation", |b| {
        b.iter(|| exp::e10_interconnect(None, TimeModel::intel_like()))
    });
    g.finish();
}

fn bench_e11_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("e11_ablation");
    g.sample_size(10);
    g.bench_function("one_mechanism", |b| {
        b.iter(|| {
            tp_core::check_noninterference(&tp_bench::canonical_scenario(Some(Mechanism::Padding)))
        })
    });
    g.finish();
}

fn bench_e12_branch_predictor(c: &mut Criterion) {
    let mut g = c.benchmark_group("e12_branch_predictor");
    g.sample_size(10);
    g.bench_function("open", |b| {
        b.iter(|| {
            exp::e12_transmit_once(
                TimeProtConfig::off(),
                black_box(false),
                TimeModel::intel_like(),
            )
        })
    });
    g.bench_function("closed", |b| {
        b.iter(|| {
            exp::e12_transmit_once(
                TimeProtConfig::full(),
                black_box(false),
                TimeModel::intel_like(),
            )
        })
    });
    g.finish();
}

fn bench_e13_hyperthread(c: &mut Criterion) {
    let mut g = c.benchmark_group("e13_hyperthread");
    g.sample_size(10);
    g.bench_function("sibling_threads", |b| {
        b.iter(|| exp::e13_transmit_once(true, black_box(9), TimeModel::intel_like()))
    });
    g.bench_function("separate_cores", |b| {
        b.iter(|| exp::e13_transmit_once(false, black_box(9), TimeModel::intel_like()))
    });
    g.finish();
}

fn bench_e14_exhaustive(c: &mut Criterion) {
    use tp_core::exhaustive::{check_exhaustive, ExhaustiveConfig};
    let mut g = c.benchmark_group("e14_exhaustive");
    g.sample_size(10);
    g.bench_function("length_2_space", |b| {
        b.iter(|| {
            check_exhaustive(&ExhaustiveConfig {
                max_len: 2,
                ..ExhaustiveConfig::small(TimeProtConfig::full())
            })
        })
    });
    g.finish();
}

criterion_group!(
    experiments,
    bench_e1_downgrader,
    bench_e2_prime_probe,
    bench_e3_llc,
    bench_e4_switch,
    bench_e5_irq,
    bench_e6_kclone,
    bench_e7_proof,
    bench_e8_tlb,
    bench_e9_algorithmic,
    bench_e10_interconnect,
    bench_e11_ablation,
    bench_e12_branch_predictor,
    bench_e13_hyperthread,
    bench_e14_exhaustive,
);
criterion_main!(experiments);
