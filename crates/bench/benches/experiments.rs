//! Std-only benches timing each experiment's end-to-end runner
//! (E1..E14). These regenerate the paper-claim artefacts while measuring
//! how long the reproduction takes to produce them — useful both as a
//! performance regression net for the simulator and as a single
//! `cargo bench` entry point that exercises every experiment.
//!
//! No external harness: each case runs a fixed number of iterations and
//! reports the per-iteration mean and min wall time.

use std::hint::black_box;

use tp_attacks::experiments as exp;
use tp_core::engine;
use tp_hw::clock::TimeModel;
use tp_kernel::config::{Mechanism, TimeProtConfig};

/// Time `f` over `iters` iterations and print a one-line summary.
fn bench<R>(name: &str, iters: u32, f: impl FnMut() -> R) {
    let (total, min) = tp_bench::time_iters(iters, f);
    println!(
        "{name:<40} {iters:>3} iters  mean {:>12.3?}  min {:>12.3?}",
        total / iters,
        min
    );
}

fn main() {
    let model = TimeModel::intel_like();

    bench("e1_downgrader/leaky", 10, || {
        exp::e1_delivery_time(false, black_box(0xff00ff), model)
    });
    bench("e1_downgrader/deterministic", 10, || {
        exp::e1_delivery_time(true, black_box(0xff00ff), model)
    });

    bench("e2_l1_prime_probe/open", 10, || {
        exp::e2_transmit_once(TimeProtConfig::off(), black_box(21), model)
    });
    bench("e2_l1_prime_probe/closed", 10, || {
        exp::e2_transmit_once(TimeProtConfig::full(), black_box(21), model)
    });

    bench("e3_llc_concurrent/shared_colours", 10, || {
        exp::e3_transmit_once(false, black_box(5), model)
    });
    bench("e3_llc_concurrent/disjoint_colours", 10, || {
        exp::e3_transmit_once(true, black_box(5), model)
    });

    bench("e4_switch_latency/unpadded_sweep", 10, || {
        exp::e4_switch_latency(false, black_box(&[0, 96, 192]))
    });
    bench("e4_switch_latency/padded_sweep", 10, || {
        exp::e4_switch_latency(true, black_box(&[0, 96, 192]))
    });

    let delay = exp::e5_victim_slice_delays()[0];
    bench("e5_irq_channel/unpartitioned", 10, || {
        exp::e5_transmit_once(false, true, black_box(delay), model)
    });
    bench("e5_irq_channel/partitioned", 10, || {
        exp::e5_transmit_once(true, true, black_box(delay), model)
    });

    bench("e6_kernel_clone/shared_image", 10, || {
        exp::e6_syscall_latency(false, true, model)
    });
    bench("e6_kernel_clone/cloned_image", 10, || {
        exp::e6_syscall_latency(true, true, model)
    });

    bench("e7_proof/ni_check_full", 5, || {
        tp_core::check_noninterference(&tp_bench::canonical_scenario(None))
    });
    bench("e7_proof/prove_sequential", 3, || {
        tp_core::prove(
            &tp_bench::canonical_scenario(None),
            &tp_core::default_time_models(),
        )
    });
    bench("e7_proof/prove_parallel", 3, || {
        engine::prove_parallel(
            &tp_bench::canonical_scenario(None),
            &tp_core::default_time_models(),
        )
    });

    bench("e8_tlb_theorem/randomised_rounds", 10, || {
        tp_bench::report_e8(black_box(3))
    });

    bench("e9_algorithmic/padded_delivery", 10, || {
        exp::e1_delivery_time(true, black_box(u64::MAX), model)
    });

    bench("e10_interconnect/no_mitigation", 10, || {
        exp::e10_interconnect(None, model)
    });

    bench("e11_ablation/one_mechanism", 5, || {
        tp_core::check_noninterference(&tp_bench::canonical_scenario(Some(Mechanism::Padding)))
    });

    bench("e12_branch_predictor/open", 10, || {
        exp::e12_transmit_once(TimeProtConfig::off(), black_box(false), model)
    });
    bench("e12_branch_predictor/closed", 10, || {
        exp::e12_transmit_once(TimeProtConfig::full(), black_box(false), model)
    });

    bench("e13_hyperthread/sibling_threads", 10, || {
        exp::e13_transmit_once(true, black_box(9), model)
    });
    bench("e13_hyperthread/separate_cores", 10, || {
        exp::e13_transmit_once(false, black_box(9), model)
    });

    use tp_core::exhaustive::ExhaustiveConfig;
    bench("e14_exhaustive/length_2_sequential", 5, || {
        tp_core::check_exhaustive(&ExhaustiveConfig {
            max_len: 2,
            ..ExhaustiveConfig::small(TimeProtConfig::full())
        })
    });
    bench("e14_exhaustive/length_2_parallel", 5, || {
        engine::check_exhaustive_parallel(&ExhaustiveConfig {
            max_len: 2,
            ..ExhaustiveConfig::small(TimeProtConfig::full())
        })
    });
}
