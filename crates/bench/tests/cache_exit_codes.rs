//! Exit-code contract for the `--cache` paths, pinned through the real
//! `matrix` binary: malformed input (a cache file that fails wire
//! parsing) must exit with a code of its own — distinct from usage
//! errors and, crucially, from the silent-degradation path where an
//! entry parses but fails validation and is simply rejected and
//! re-proved with exit 0. A daemon supervisor (or CI) keying restart
//! policy off these codes must be able to tell "throw the file away"
//! from "the run healed itself".

use std::path::PathBuf;
use std::process::Command;

use tp_bench::cli::{EXIT_MALFORMED, EXIT_USAGE};

/// A scratch cache path unique to this test process.
fn cache_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "tp_cache_exit_{}_{}.cache",
        name,
        std::process::id()
    ))
}

/// Run `matrix --worker --cells 0..2 --models 1 --threads 2` with
/// `--cache path`, returning (exit code, stdout, stderr).
fn run_cached(path: &PathBuf) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_matrix"))
        .args([
            "--worker",
            "--cells",
            "0..2",
            "--models",
            "1",
            "--threads",
            "2",
            "--cache",
        ])
        .arg(path)
        .output()
        .expect("matrix binary runs");
    (
        out.status.code().expect("matrix must exit, not die"),
        String::from_utf8(out.stdout).unwrap(),
        String::from_utf8(out.stderr).unwrap(),
    )
}

#[test]
fn malformed_cache_file_exits_with_its_own_code() {
    let path = cache_path("malformed");
    std::fs::write(&path, "this is not a cache @@@\n").unwrap();
    let (code, _, stderr) = run_cached(&path);
    std::fs::remove_file(&path).ok();
    assert_eq!(
        code, EXIT_MALFORMED,
        "unparseable cache is malformed input: {stderr}"
    );
    assert!(stderr.contains("cannot parse cache"), "{stderr}");
    assert_ne!(EXIT_MALFORMED, EXIT_USAGE, "codes must be distinguishable");
}

#[test]
fn rejected_entries_reprove_with_exit_zero() {
    let path = cache_path("rejected");

    // Cold run: populates the cache, everything proves live.
    let (code, cold_stdout, stderr) = run_cached(&path);
    assert_eq!(code, 0, "cold run: {stderr}");
    assert!(stderr.contains("0 hits"), "{stderr}");

    // Corrupt one entry's checksum *without* breaking the wire syntax:
    // the file still parses, but validation rejects the entry.
    let text = std::fs::read_to_string(&path).unwrap();
    let pos = text.find("check=").expect("cache carries checksums") + "check=".len();
    let digit = text.as_bytes()[pos];
    assert!(digit.is_ascii_digit());
    let flipped = if digit == b'9' {
        '1'
    } else {
        (digit + 1) as char
    };
    let mut corrupted = text.clone();
    corrupted.replace_range(pos..pos + 1, &flipped.to_string());
    assert_ne!(text, corrupted);
    std::fs::write(&path, corrupted).unwrap();

    // Warm-but-poisoned run: the rejected entry re-proves, the run
    // succeeds, stdout is byte-identical, and stderr counts the
    // rejection — exit 0, not a malformed-input failure.
    let (code, warm_stdout, stderr) = run_cached(&path);
    std::fs::remove_file(&path).ok();
    assert_eq!(code, 0, "rejected entries must self-heal: {stderr}");
    assert!(stderr.contains("1 rejected"), "{stderr}");
    assert_eq!(
        warm_stdout, cold_stdout,
        "self-healed output must stay byte-identical"
    );
}

#[test]
fn usage_errors_keep_their_code() {
    let out = Command::new(env!("CARGO_BIN_EXE_matrix"))
        .args(["--bogus"])
        .output()
        .expect("matrix binary runs");
    assert_eq!(out.status.code(), Some(EXIT_USAGE));
}
