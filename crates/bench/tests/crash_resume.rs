//! Kill/resume end-to-end through the real `matrix` binary: a sweep
//! SIGKILLed mid-journal (via the deterministic `TP_FAULTS` harness)
//! must resume with byte-identical stdout, re-proving only the cells
//! the journal lost — at 1, 2 and 8 workers, because the checkpoint
//! order must not depend on scheduling. Also pins the torn-tail drop
//! (a crash mid-append) and the fail-closed exit for a journal
//! corrupted anywhere but its physical tail.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Sequence numbers for per-test scratch paths.
static SCRATCH: AtomicUsize = AtomicUsize::new(0);

fn scratch_journal() -> PathBuf {
    std::env::temp_dir().join(format!(
        "tp_crash_resume_{}_{}.journal",
        std::process::id(),
        SCRATCH.fetch_add(1, Ordering::SeqCst)
    ))
}

/// Run the matrix binary on six cells of the one-model matrix.
fn matrix_run(threads: usize, extra: &[&str], faults: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_matrix"));
    cmd.args([
        "--threads",
        &threads.to_string(),
        "--models",
        "1",
        "--cells",
        "0..6",
    ])
    .args(extra)
    // Keep stderr deterministic: no heartbeat unless asked.
    .env_remove("TP_FAULTS");
    if let Some(spec) = faults {
        cmd.env("TP_FAULTS", spec);
    }
    cmd.output().expect("matrix binary runs")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Crash a journaled sweep with `faults`, then resume it and check the
/// resumed stdout is byte-identical to an uninterrupted run, with
/// exactly `replayed`/`reproved` cells on each side of the checkpoint.
fn crash_then_resume(threads: usize, faults: &str, replayed: usize, torn: usize) {
    let journal = scratch_journal();
    let jpath = journal.to_str().unwrap();

    // The uninterrupted reference for this thread count.
    let clean = matrix_run(threads, &[], None);
    assert!(clean.status.success(), "clean run: {}", stderr_of(&clean));

    // The crash: the injected fault aborts the process mid-sweep.
    let crashed = matrix_run(threads, &["--journal", jpath], Some(faults));
    assert!(
        !crashed.status.success(),
        "the injected fault must kill the run"
    );
    assert!(
        stderr_of(&crashed).contains("faultpoint: injected crash at journal.append"),
        "crash is the injected one: {}",
        stderr_of(&crashed)
    );

    // The resume: replays the survivors, re-proves the rest, and the
    // report is byte-identical to never having crashed at all.
    let resumed = matrix_run(threads, &["--resume", jpath], None);
    let stderr = stderr_of(&resumed);
    assert!(resumed.status.success(), "resume run: {stderr}");
    assert!(
        stderr.contains(&format!(
            "journal: loaded {replayed} records ({torn} torn-dropped)"
        )),
        "threads={threads} faults={faults}: {stderr}"
    );
    assert!(
        stderr.contains(&format!(
            "journal: {replayed} replayed, {torn} torn-dropped, {} re-proved",
            6 - replayed
        )),
        "threads={threads} faults={faults}: {stderr}"
    );
    assert_eq!(
        clean.stdout, resumed.stdout,
        "threads={threads} faults={faults}: resumed stdout must be byte-identical"
    );

    // The compaction rewrote the journal clean: a second resume
    // replays everything and re-proves nothing.
    let again = matrix_run(threads, &["--resume", jpath], None);
    let stderr = stderr_of(&again);
    assert!(again.status.success(), "second resume: {stderr}");
    assert!(
        stderr.contains("journal: 6 replayed, 0 torn-dropped, 0 re-proved"),
        "second resume is all-replay: {stderr}"
    );
    assert_eq!(clean.stdout, again.stdout, "second resume stdout");

    std::fs::remove_file(&journal).ok();
}

#[test]
fn a_sigkilled_sweep_resumes_byte_identical_at_every_worker_count() {
    // kill@3: appends 1 and 2 land durable, the third dies before any
    // byte is written — two whole records survive, four cells re-prove.
    // Checkpoints append in cell order regardless of scheduling, so the
    // counts are exact at every thread count.
    for threads in [1, 2, 8] {
        crash_then_resume(threads, "7:journal.append=kill@3", 2, 0);
    }
}

#[test]
fn a_crash_mid_append_leaves_a_torn_tail_that_resume_drops() {
    // truncate@2: the second append writes half its record and dies —
    // one whole record plus a torn tail. Resume drops the tail
    // silently, replays the survivor, re-proves the other five.
    for threads in [1, 8] {
        crash_then_resume(threads, "7:journal.append=truncate@2", 1, 1);
    }
}

#[test]
fn corruption_before_the_tail_fails_the_resume_closed() {
    let journal = scratch_journal();
    let jpath = journal.to_str().unwrap();

    // Build a healthy two-record journal by crashing on the third.
    let crashed = matrix_run(2, &["--journal", jpath], Some("7:journal.append=kill@3"));
    assert!(!crashed.status.success());

    // Flip one byte in the FIRST record's payload: damage before the
    // physical tail is corruption, not a crash artifact, and the
    // resume must refuse the file with the malformed-input exit code.
    let text = std::fs::read_to_string(Path::new(jpath)).expect("journal readable");
    let at = text.find('\n').unwrap() + 10;
    let mut bytes = text.into_bytes();
    bytes[at] ^= 1;
    std::fs::write(Path::new(jpath), &bytes).expect("journal rewritten");

    let resumed = matrix_run(2, &["--resume", jpath], None);
    assert_eq!(
        resumed.status.code(),
        Some(tp_bench::cli::EXIT_MALFORMED),
        "corrupt journal fails closed: {}",
        stderr_of(&resumed)
    );
    assert!(
        stderr_of(&resumed).contains("cannot parse journal"),
        "{}",
        stderr_of(&resumed)
    );

    std::fs::remove_file(&journal).ok();
}
