//! Acceptance test for digest-first execution: on the E11 ablation
//! sweep, the trace-free default ([`ProofMode::Certified`]) must be
//! functionally bit-identical to the forced-recording single-run mode
//! ([`ProofMode::CertifiedRecording`]) — and no slower in wall-clock.
//!
//! Like its siblings in `engine_speedup.rs`, the timing assertion
//! self-calibrates instead of hardcoding budgets: both modes run the
//! identical sweep on a multi-worker pool (so the merge thread's
//! divergence re-runs overlap the sweep tail, the shape digest-first is
//! designed for), best-of-N per attempt, with a noise margin and
//! retries. Hosts that cannot demonstrate parallel overlap (< 4
//! threads) skip the timing assertion with a note — the functional
//! equivalence gate always runs.

use tp_bench::{canonical_machine, canonical_scenario, time_iters};
use tp_core::engine::{available_threads, ProofMode, ScenarioMatrix};
use tp_core::proof::default_time_models;
use tp_sched::WorkerPool;

fn e11(mode: ProofMode) -> ScenarioMatrix {
    // Two time models keep the double sweep test-profile friendly.
    ScenarioMatrix::new("canonical", canonical_machine())
        .sweep_ablations()
        .with_models(default_time_models()[..2].to_vec())
        .with_mode(mode)
}

#[test]
fn digest_first_is_no_slower_than_recording_on_the_e11_sweep() {
    let threads = available_threads();
    let pool = WorkerPool::new(threads.clamp(1, 4));

    // Functional gate first: the digest-first sweep must reproduce the
    // recording sweep bit for bit — verdicts, witnesses, certificates,
    // rendered text — or timing it is meaningless.
    let digest = e11(ProofMode::Certified).run_on(&pool, |c| canonical_scenario(c.disable));
    let recording =
        e11(ProofMode::CertifiedRecording).run_on(&pool, |c| canonical_scenario(c.disable));
    assert_eq!(
        digest, recording,
        "digest-first and recording E11 sweeps must agree bit for bit"
    );
    assert_eq!(digest.to_string(), recording.to_string());
    for (cell, report) in &digest.cells {
        let cert = report.transparency.expect("every cell is certified");
        assert!(cert.transparent(), "{}: {cert}", cell.label());
    }

    if threads < 4 {
        eprintln!(
            "(host has {threads} thread(s); skipping the digest <= recording \
             wall-clock assertion)"
        );
        return;
    }

    // Digest-first does the same number of hot-path runs and strictly
    // less allocation; its divergence re-runs execute on the merge
    // thread while workers drive the sweep tail, so wall-clock must not
    // regress. The margin absorbs scheduler noise on shared runners; a
    // sustained overshoot across attempts is a real regression.
    let margin = 1.25;
    let mut ratios = Vec::new();
    for attempt in 0..3 {
        let t_digest = time_iters(3, || {
            e11(ProofMode::Certified).run_on(&pool, |c| canonical_scenario(c.disable))
        })
        .1;
        let t_recording = time_iters(3, || {
            e11(ProofMode::CertifiedRecording).run_on(&pool, |c| canonical_scenario(c.disable))
        })
        .1;
        let ratio = t_digest.as_secs_f64() / t_recording.as_secs_f64();
        eprintln!(
            "attempt {attempt}: digest-first {t_digest:?}, recording {t_recording:?} \
             (digest/recording = {ratio:.3})"
        );
        ratios.push(ratio);
        if ratio <= margin {
            return;
        }
    }
    panic!(
        "digest-first mode was slower than recording mode in every attempt \
         (digest/recording ratios {ratios:?}, allowed margin {margin}); \
         the trace-free hot path has regressed"
    );
}
