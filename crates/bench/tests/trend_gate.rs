//! End-to-end trend gate: run the real `bench` binary in `--check`
//! mode against synthetic committed trajectories and require the CI
//! verdicts — a deliberately slowed history entry must make a real run
//! pass, an impossibly fast one must make it FAIL, and a foreign host
//! must pass vacuously. This is the acceptance check that a genuine
//! perf regression cannot land: the gate is exercised through the same
//! binary invocation CI uses, not a unit shim.

use std::path::PathBuf;
use std::process::Command;

use tp_bench::trajectory::Json;

/// A v2 trajectory with one smoke run measured on `cpus` CPUs with one
/// worker thread, at the given speed.
fn synthetic_trajectory(ns_per_step: f64, programs_per_sec: f64, cpus: usize) -> String {
    let run = Json::Obj(vec![
        ("smoke".into(), Json::Bool(true)),
        ("threads".into(), Json::Num(1.0)),
        (
            "host".into(),
            Json::Obj(vec![
                ("threads".into(), Json::Num(1.0)),
                ("cpus".into(), Json::Num(cpus as f64)),
                ("git_rev".into(), Json::Str("0000000".into())),
                ("unix_time".into(), Json::Num(1_700_000_000.0)),
            ]),
        ),
        (
            "e11".into(),
            Json::Obj(vec![("ns_per_step".into(), Json::Num(ns_per_step))]),
        ),
        (
            "exhaustive".into(),
            Json::Obj(vec![(
                "programs_per_sec".into(),
                Json::Num(programs_per_sec),
            )]),
        ),
    ]);
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"tp-bench/matrix-v2\",\n  \"runs\": ");
    Json::Arr(vec![run]).render(&mut out, 1);
    out.push_str("\n}\n");
    out
}

/// Run `bench --smoke --threads 1 --check` against `trajectory`,
/// returning (success, stderr, file contents afterwards).
fn run_check(name: &str, trajectory: &str) -> (bool, String, String) {
    let path: PathBuf = std::env::temp_dir().join(format!(
        "tp_trend_gate_{}_{}.json",
        name,
        std::process::id()
    ));
    std::fs::write(&path, trajectory).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_bench"))
        .args(["--smoke", "--threads", "1", "--check", "--out"])
        .arg(&path)
        .output()
        .expect("bench binary runs");
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    let after = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    (out.status.success(), stderr, after)
}

fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[test]
fn slowed_history_lets_a_real_run_pass() {
    // History claims 1e9 ns/step (a deliberately slowed entry): any
    // real measurement is far inside the band.
    let traj = synthetic_trajectory(1e9, 1e-3, host_cpus());
    let (ok, stderr, after) = run_check("pass", &traj);
    assert!(ok, "gate should pass against a slow baseline:\n{stderr}");
    assert!(stderr.contains("trend gate: PASS"), "{stderr}");
    // The gate must say which committed entry it judged against.
    assert!(
        stderr.contains("trend gate: baseline git_rev=0000000"),
        "{stderr}"
    );
    assert_eq!(after, traj, "--check must not rewrite the trajectory");
}

#[test]
fn fast_history_fails_a_real_run() {
    // History claims 0.001 ns/step: every real run is a "regression"
    // beyond any sane band — CI must go red.
    let traj = synthetic_trajectory(1e-3, 1e12, host_cpus());
    let (ok, stderr, after) = run_check("fail", &traj);
    assert!(
        !ok,
        "gate must fail against an impossible baseline:\n{stderr}"
    );
    assert!(stderr.contains("trend gate: REGRESSION"), "{stderr}");
    assert!(
        stderr.contains("trend gate: baseline git_rev=0000000"),
        "{stderr}"
    );
    assert_eq!(
        after, traj,
        "a failing --check must not rewrite the trajectory"
    );
}

#[test]
fn foreign_host_passes_vacuously() {
    // Same speeds as the failing case, but recorded on a host with a
    // different CPU count: incomparable, so the gate stands down.
    let traj = synthetic_trajectory(1e-3, 1e12, host_cpus() + 1);
    let (ok, stderr, _) = run_check("foreign", &traj);
    assert!(ok, "incomparable history must pass vacuously:\n{stderr}");
    assert!(stderr.contains("vacuous: no comparable host"), "{stderr}");
}
