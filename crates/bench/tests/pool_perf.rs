//! Acceptance test for the persistent scheduler: on the E11 ablation
//! sweep (the canonical matrix's `run_ni`), the `tp-sched` pool path
//! must be **no slower** than the legacy scoped spawn-per-call path —
//! amortising thread spawns across submissions is the pool's whole
//! reason to exist.
//!
//! The comparison self-calibrates instead of hardcoding an absolute
//! budget: both paths run the identical sweep, each timed best-of-N on
//! this host, and the assertion is relative (pool ≤ scoped × margin).
//! The margin plus a retry loop absorbs scheduler noise on shared CI
//! runners; a *sustained* slowdown across attempts — an actual
//! scheduler regression — still fails.

use tp_bench::{canonical_machine, canonical_scenario, time_iters};
use tp_core::ScenarioMatrix;
use tp_sched::{available_threads, WorkerPool};

fn ablation_matrix() -> ScenarioMatrix {
    ScenarioMatrix::new("canonical", canonical_machine()).sweep_ablations()
}

#[test]
fn pool_is_no_slower_than_scoped_on_the_e11_ablation_sweep() {
    let threads = available_threads();
    let pool = WorkerPool::new(threads);

    // Functional gate first: both paths must produce identical
    // verdicts, or timing them is meaningless.
    let scoped = ablation_matrix().run_ni_scoped(threads, |cell| canonical_scenario(cell.disable));
    let pooled = ablation_matrix().run_ni_on(&pool, |cell| canonical_scenario(cell.disable));
    assert_eq!(scoped, pooled, "pool and scoped sweeps must agree");

    // Self-calibrating relative comparison, best-of-3 per side per
    // attempt. The pool keeps its workers warm across the iterations —
    // exactly the bin/all usage pattern it exists for.
    let margin = 1.35;
    let mut ratios = Vec::new();
    for attempt in 0..3 {
        let t_scoped = time_iters(3, || {
            ablation_matrix().run_ni_scoped(threads, |cell| canonical_scenario(cell.disable))
        })
        .1;
        let t_pool = time_iters(3, || {
            ablation_matrix().run_ni_on(&pool, |cell| canonical_scenario(cell.disable))
        })
        .1;
        let ratio = t_pool.as_secs_f64() / t_scoped.as_secs_f64();
        eprintln!(
            "attempt {attempt}: scoped {t_scoped:?}, pool {t_pool:?} on {threads} threads \
             (pool/scoped = {ratio:.3})"
        );
        ratios.push(ratio);
        if ratio <= margin {
            return;
        }
    }
    panic!(
        "pool path was slower than the scoped path in every attempt \
         (pool/scoped ratios {ratios:?}, allowed margin {margin}); \
         the persistent scheduler has regressed"
    );
}
