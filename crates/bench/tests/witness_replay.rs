//! Witness replay: a failing ablation is only useful evidence if its
//! leak witness is *replayable*. For every §4 mechanism, disabling it in
//! the canonical scenario must produce an NI leak whose distinguishing
//! Lo trace reproduces exactly when the two secrets' systems are re-run
//! under `noninterference::run_monitored`.

use tp_bench::canonical_scenario;
use tp_core::check_noninterference;
use tp_core::noninterference::{first_divergence, run_monitored, NiVerdict};
use tp_kernel::config::Mechanism;
use tp_kernel::domain::ObsEvent;
use tp_kernel::kernel::System;

/// Monitored replay of the canonical scenario for one secret, returning
/// Lo's observation log.
fn monitored_lo_trace(disable: Option<Mechanism>, secret: u64) -> Vec<ObsEvent> {
    let sc = canonical_scenario(disable);
    let sys = System::new(sc.mcfg.clone(), (sc.make_kcfg)(secret)).expect("canonical system");
    let run = run_monitored(sys, sc.lo, sc.budget, sc.max_steps);
    let trace = run.lo_trace.expect("recording run keeps a trace");
    assert_eq!(
        trace,
        run.system.observation(sc.lo).events,
        "certified trace must be the system's own log"
    );
    trace
}

#[test]
fn every_ablation_yields_a_replayable_witness() {
    for m in Mechanism::ALL {
        let verdict = check_noninterference(&canonical_scenario(Some(m)));
        let NiVerdict::Leak {
            secret_a,
            secret_b,
            divergence,
            event_a,
            event_b,
        } = verdict
        else {
            panic!("disabling {m:?} must open a channel, got {verdict}");
        };

        // Replay both secrets under monitoring; the distinguishing Lo
        // trace must reproduce event-for-event.
        let trace_a = monitored_lo_trace(Some(m), secret_a);
        let trace_b = monitored_lo_trace(Some(m), secret_b);
        assert_eq!(
            first_divergence(&trace_a, &trace_b),
            Some(divergence),
            "{m:?}: replay must diverge at the witnessed event"
        );
        assert_eq!(
            trace_a.get(divergence).copied(),
            event_a,
            "{m:?}: secret {secret_a}'s event at the divergence must reproduce"
        );
        assert_eq!(
            trace_b.get(divergence).copied(),
            event_b,
            "{m:?}: secret {secret_b}'s event at the divergence must reproduce"
        );
        assert_ne!(event_a, event_b, "{m:?}: witness events must differ");
    }
}

#[test]
fn full_protection_replay_has_no_divergence() {
    let verdict = check_noninterference(&canonical_scenario(None));
    assert!(verdict.passed(), "{verdict}");
    let sc = canonical_scenario(None);
    let a = monitored_lo_trace(None, sc.secrets[0]);
    let b = monitored_lo_trace(None, sc.secrets[1]);
    assert_eq!(first_divergence(&a, &b), None);
    assert!(!a.is_empty(), "Lo must actually observe something");
}
