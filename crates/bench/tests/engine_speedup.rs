//! Acceptance test for the engine: on the canonical scenario,
//! `prove_parallel` must return the identical verdict to the sequential
//! `prove`, and on a host that can actually run ≥ 2× faster in parallel
//! it must do so. The speedup assertion self-calibrates: it first
//! measures the host's achievable parallel speedup on embarrassingly
//! parallel spin work, and only asserts when that ceiling is ≥ 2.5× —
//! so SMT-limited laptops, 1-core containers and noisy shared CI
//! runners skip the timing assertion (with a note) instead of flaking,
//! while any genuine multi-core runner still enforces the 2× bar.

use tp_bench::{canonical_scenario, time_iters};
use tp_core::engine::{available_threads, parallel_map, prove_parallel};
use tp_core::proof::{default_time_models, prove};

/// CPU-bound spin work the compiler cannot elide.
fn spin(rounds: u64) -> u64 {
    let mut x = 0x9e37_79b9u64;
    for i in 0..rounds {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    std::hint::black_box(x)
}

/// Measured parallel speedup ceiling of this host: N independent spin
/// tasks run sequentially vs on the pool.
fn calibration_speedup(threads: usize) -> f64 {
    let tasks: Vec<u64> = vec![2_000_000; 4 * threads.max(1)];
    let seq = time_iters(3, || parallel_map(&tasks, 1, |_, &r| spin(r))).1;
    let par = time_iters(3, || parallel_map(&tasks, threads, |_, &r| spin(r))).1;
    seq.as_secs_f64() / par.as_secs_f64()
}

#[test]
fn parallel_prove_matches_and_beats_sequential() {
    let models = default_time_models();
    // prove_parallel runs on the global pool, whose size TP_THREADS can
    // pin below the host's parallelism (CI does exactly that) — gate
    // the timing assertion on what is actually measured.
    let threads = tp_sched::global().threads().min(available_threads());

    // Identical verdict, bit for bit.
    let sequential = prove(&canonical_scenario(None), &models);
    let parallel = prove_parallel(&canonical_scenario(None), &models);
    assert!(sequential.time_protection_proved(), "{sequential}");
    assert!(parallel.time_protection_proved(), "{parallel}");
    assert_eq!(sequential.to_string(), parallel.to_string());
    assert_eq!(sequential.steps, parallel.steps);

    // One measured ratio per attempt (best-of-3 each side).
    let measure = || {
        let t_seq = time_iters(3, || prove(&canonical_scenario(None), &models)).1;
        let t_par = time_iters(3, || prove_parallel(&canonical_scenario(None), &models)).1;
        let ratio = t_seq.as_secs_f64() / t_par.as_secs_f64();
        eprintln!(
            "prove: sequential {t_seq:?}, parallel {t_par:?} on {threads} threads ({ratio:.2}x)"
        );
        ratio
    };
    if threads < 4 {
        eprintln!("(host has {threads} thread(s); skipping the >= 2x speedup assertion)");
        return;
    }
    let first = measure();
    let ceiling = calibration_speedup(threads);
    eprintln!("calibration: spin-work parallel speedup ceiling {ceiling:.2}x");
    if ceiling < 2.5 {
        eprintln!("(ceiling < 2.5x: host cannot demonstrate 2x; skipping the assertion)");
        return;
    }
    // Retry on transient noise: a correct engine on >= 4 real cores
    // clears 2x comfortably, so only a sustained cap across attempts —
    // an actual engine regression or a genuinely bandwidth-starved
    // host — fails here.
    let mut best = first;
    for _ in 0..2 {
        if best >= 2.0 {
            break;
        }
        best = best.max(measure());
    }
    assert!(
        best >= 2.0,
        "host sustains {ceiling:.2}x on spin work, so the engine must reach >= 2x \
         in some attempt; best observed {best:.2}x"
    );
}
