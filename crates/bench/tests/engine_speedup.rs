//! Acceptance test for the engine: on the canonical scenario,
//! `prove_parallel` must return the identical verdict to the sequential
//! `prove`, and on a host that can actually run ≥ 2× faster in parallel
//! it must do so. The speedup assertion self-calibrates: it first
//! measures the host's achievable parallel speedup on embarrassingly
//! parallel spin work, and only asserts when that ceiling is ≥ 2.5× —
//! so SMT-limited laptops, 1-core containers and noisy shared CI
//! runners skip the timing assertion (with a note) instead of flaking,
//! while any genuine multi-core runner still enforces the 2× bar.

use tp_bench::{canonical_machine, canonical_scenario, time_iters};
use tp_core::engine::{available_threads, parallel_map, prove_parallel, ScenarioMatrix};
use tp_core::proof::{default_time_models, prove};
use tp_sched::WorkerPool;

/// CPU-bound spin work the compiler cannot elide.
fn spin(rounds: u64) -> u64 {
    let mut x = 0x9e37_79b9u64;
    for i in 0..rounds {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    std::hint::black_box(x)
}

/// Measured parallel speedup ceiling of this host: N independent spin
/// tasks run sequentially vs on the pool.
fn calibration_speedup(threads: usize) -> f64 {
    let tasks: Vec<u64> = vec![2_000_000; 4 * threads.max(1)];
    let seq = time_iters(3, || parallel_map(&tasks, 1, |_, &r| spin(r))).1;
    let par = time_iters(3, || parallel_map(&tasks, threads, |_, &r| spin(r))).1;
    seq.as_secs_f64() / par.as_secs_f64()
}

#[test]
fn parallel_prove_matches_and_beats_sequential() {
    let models = default_time_models();
    // prove_parallel runs on the global pool, whose size TP_THREADS can
    // pin below the host's parallelism (CI does exactly that) — gate
    // the timing assertion on what is actually measured.
    let threads = tp_sched::global().threads().min(available_threads());

    // Identical verdict, bit for bit.
    let sequential = prove(&canonical_scenario(None), &models);
    let parallel = prove_parallel(&canonical_scenario(None), &models);
    assert!(sequential.time_protection_proved(), "{sequential}");
    assert!(parallel.time_protection_proved(), "{parallel}");
    assert_eq!(sequential.to_string(), parallel.to_string());
    assert_eq!(sequential.steps, parallel.steps);

    // One measured ratio per attempt (best-of-3 each side).
    let measure = || {
        let t_seq = time_iters(3, || prove(&canonical_scenario(None), &models)).1;
        let t_par = time_iters(3, || prove_parallel(&canonical_scenario(None), &models)).1;
        let ratio = t_seq.as_secs_f64() / t_par.as_secs_f64();
        eprintln!(
            "prove: sequential {t_seq:?}, parallel {t_par:?} on {threads} threads ({ratio:.2}x)"
        );
        ratio
    };
    if threads < 4 {
        eprintln!("(host has {threads} thread(s); skipping the >= 2x speedup assertion)");
        return;
    }
    let first = measure();
    let ceiling = calibration_speedup(threads);
    eprintln!("calibration: spin-work parallel speedup ceiling {ceiling:.2}x");
    if ceiling < 2.5 {
        eprintln!("(ceiling < 2.5x: host cannot demonstrate 2x; skipping the assertion)");
        return;
    }
    // Retry on transient noise: a correct engine on >= 4 real cores
    // clears 2x comfortably, so only a sustained cap across attempts —
    // an actual engine regression or a genuinely bandwidth-starved
    // host — fails here.
    let mut best = first;
    for _ in 0..2 {
        if best >= 2.0 {
            break;
        }
        best = best.max(measure());
    }
    assert!(
        best >= 2.0,
        "host sustains {ceiling:.2}x on spin work, so the engine must reach >= 2x \
         in some attempt; best observed {best:.2}x"
    );
}

/// The transparency dividend: on the E11 ablation sweep, certified
/// single-run mode must do at most ~0.6× the work of `--replay-check`
/// mode (per cell: models × secrets + 1 runs instead of
/// 2 × models × secrets). The comparison self-calibrates by timing both
/// modes on a single-worker pool — a pure work measurement, immune to
/// parallel-tail artefacts — with a margin plus retries for scheduler
/// noise, and is gated on ≥ 4 cores like the speedup assertion above.
#[test]
fn certified_single_run_halves_replay_check_work_on_the_e11_sweep() {
    // Two time models keep a double-run sweep test-profile friendly;
    // the per-cell work ratio (7 runs vs 12) is model-count agnostic.
    let models = default_time_models()[..2].to_vec();
    let matrix = |replay_check: bool| {
        ScenarioMatrix::new("canonical", canonical_machine())
            .sweep_ablations()
            .with_models(models.clone())
            .with_replay_check(replay_check)
    };

    // Functional gate first: both modes must produce bit-identical
    // reports — certificates included — or timing them is meaningless.
    let pool = WorkerPool::new(1);
    let certified = matrix(false).run_on(&pool, |cell| canonical_scenario(cell.disable));
    let audited = matrix(true).run_on(&pool, |cell| canonical_scenario(cell.disable));
    assert_eq!(
        certified, audited,
        "certified and replay-check E11 sweeps must agree bit for bit"
    );
    for (cell, report) in &certified.cells {
        let cert = report.transparency.expect("every cell is certified");
        assert!(cert.transparent(), "{}: {cert}", cell.label());
    }

    if available_threads() < 4 {
        eprintln!(
            "(host has {} thread(s); skipping the <= 0.6x work assertion)",
            available_threads()
        );
        return;
    }

    // Theoretical ratio with 2 models × 3 secrets: (6 + 1) / 12 = 0.58;
    // the margin absorbs per-run variance on shared runners.
    let margin = 0.72;
    let mut ratios = Vec::new();
    for attempt in 0..3 {
        let t_certified = time_iters(3, || {
            matrix(false).run_on(&pool, |cell| canonical_scenario(cell.disable))
        })
        .1;
        let t_audited = time_iters(3, || {
            matrix(true).run_on(&pool, |cell| canonical_scenario(cell.disable))
        })
        .1;
        let ratio = t_certified.as_secs_f64() / t_audited.as_secs_f64();
        eprintln!(
            "attempt {attempt}: certified {t_certified:?}, replay-check {t_audited:?} \
             (certified/replay = {ratio:.3})"
        );
        ratios.push(ratio);
        if ratio <= margin {
            return;
        }
    }
    panic!(
        "certified single-run mode did not stay under {margin}x of replay-check work \
         in any attempt (ratios {ratios:?}); the dropped-replay optimisation has regressed"
    );
}
