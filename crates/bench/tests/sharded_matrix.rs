//! Acceptance test for multi-process scale-out: the canonical matrix
//! sharded across **two real `matrix` processes** in `sched-worker`
//! mode, merged by a third invocation, must print a byte-identical
//! report to a single-process run over the same sweep.
//!
//! This drives the actual binary (not in-process calls), so it covers
//! the full path a multi-host deployment uses: CLI flags → worker wire
//! records on stdout → files → `--merge`.

use std::process::Command;

/// Run the `matrix` binary with `args`, requiring success; returns
/// stdout. Worker progress goes to stderr and is discarded.
fn matrix(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_matrix"))
        .args(args)
        .output()
        .expect("failed to spawn the matrix binary");
    assert!(
        out.status.success(),
        "matrix {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("matrix output is UTF-8")
}

#[test]
fn two_process_sharded_run_merges_to_the_single_process_report() {
    // One time model keeps the three full sweeps test-profile friendly;
    // the sharding machinery is identical at any model count.
    let single = matrix(&["--models", "1"]);
    assert!(
        single.contains("Scenario matrix: 21 cells × 1 time models"),
        "unexpected single-process header:\n{single}"
    );

    let shard_a = matrix(&["--worker", "--models", "1", "--cells", "0..11"]);
    let shard_b = matrix(&["--worker", "--models", "1", "--cells", "11..21"]);
    assert!(
        shard_a.lines().all(|l| l.split_whitespace().count() >= 2),
        "worker stdout must contain only wire records:\n{shard_a}"
    );
    // The two shards cover disjoint halves.
    assert!(shard_a.contains("cell i=0 ") && !shard_a.contains("cell i=11 "));
    assert!(shard_b.contains("cell i=11 ") && !shard_b.contains("cell i=0 "));

    let dir = std::env::temp_dir().join(format!("tp-shard-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create shard dir");
    let a = dir.join("a.txt");
    let b = dir.join("b.txt");
    std::fs::write(&a, &shard_a).expect("write shard a");
    std::fs::write(&b, &shard_b).expect("write shard b");

    // Merge order must not matter.
    let merged = matrix(&["--merge", a.to_str().unwrap(), b.to_str().unwrap()]);
    let merged_rev = matrix(&["--merge", b.to_str().unwrap(), a.to_str().unwrap()]);
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(
        merged, single,
        "merged sharded report must be byte-identical to the single-process run"
    );
    assert_eq!(merged_rev, single, "merge must be order-independent");
}

/// Transparency certificates survive the wire — and because certified
/// single-run mode and `--replay-check` produce bit-identical reports,
/// a sweep sharded across *mixed-mode* workers still merges to the
/// exact single-process report.
#[test]
fn mixed_mode_shards_merge_to_the_single_process_report() {
    let single = matrix(&["--models", "1", "--cells", "0..4"]);

    let shard_a = matrix(&["--worker", "--models", "1", "--cells", "0..2"]);
    let shard_b = matrix(&[
        "--worker",
        "--replay-check",
        "--models",
        "1",
        "--cells",
        "2..4",
    ]);
    assert!(
        shard_a.contains("cert i=0 ") && shard_b.contains("cert i=2 "),
        "worker records must carry the transparency digest"
    );

    let dir = std::env::temp_dir().join(format!("tp-shard-mixed-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create shard dir");
    let a = dir.join("a.txt");
    let b = dir.join("b.txt");
    std::fs::write(&a, &shard_a).expect("write shard a");
    std::fs::write(&b, &shard_b).expect("write shard b");
    let merged = matrix(&["--merge", a.to_str().unwrap(), b.to_str().unwrap()]);
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(
        merged, single,
        "a replay-check shard must merge byte-identically with a certified shard"
    );
}

#[test]
fn merge_rejects_incomplete_shard_sets() {
    let shard = matrix(&["--worker", "--models", "1", "--cells", "0..2"]);
    let path = std::env::temp_dir().join(format!("tp-shard-missing-{}.txt", std::process::id()));
    std::fs::write(&path, shard).expect("write shard");
    let out = Command::new(env!("CARGO_BIN_EXE_matrix"))
        .args(["--merge", path.to_str().unwrap(), path.to_str().unwrap()])
        .output()
        .expect("failed to spawn the matrix binary");
    let _ = std::fs::remove_file(&path);
    assert!(
        !out.status.success(),
        "merging the same shard twice must fail (duplicate cells)"
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("merge failed"),
        "stderr should name the merge failure"
    );
}
