//! Hostile-input wall for the hand-rolled JSON parser in
//! `tp_bench::trajectory` — the code that reads `BENCH_*.json`
//! histories and `--trace-out` files, both of which arrive from disk
//! and must be treated as untrusted. Every case here must fail loudly
//! (an `Err`, never a panic) or parse to the documented value.

use tp_bench::trajectory::{parse_json_lines, Json, RunRecord, Trajectory};

#[test]
fn truncated_documents_error_instead_of_panicking() {
    for bad in [
        "{",
        "{\"a\"",
        "{\"a\":",
        "{\"a\":1",
        "{\"a\":1,",
        "[",
        "[1,",
        "[1,2",
        "\"unterminated",
        "{\"a\":\"b",
        "{\"a\":{\"b\":1}",
        "-",
        "tru",
        "nul",
    ] {
        assert!(Json::parse(bad).is_err(), "{bad:?} must be rejected");
    }
}

#[test]
fn duplicate_keys_resolve_to_the_first_and_survive_round_trips() {
    // The parser keeps insertion order and `get` returns the FIRST
    // match — a malicious trajectory cannot shadow an already-checked
    // field by appending a second copy.
    let v = Json::parse(r#"{"ns": 1, "ns": 999}"#).unwrap();
    assert_eq!(v.get("ns").unwrap().as_f64(), Some(1.0));
    let Json::Obj(members) = &v else {
        panic!("object expected");
    };
    assert_eq!(members.len(), 2, "both members are preserved");
    // Round-tripping must not silently drop or reorder the duplicate.
    let mut out = String::new();
    v.render_compact(&mut out);
    assert_eq!(out, r#"{"ns":1,"ns":999}"#);
    assert_eq!(Json::parse(&out).unwrap(), v);
}

#[test]
fn non_finite_and_overflowing_numbers_are_rejected() {
    // JSON has no NaN/Infinity; an overflowing literal like 1e999
    // parses to `inf` at the f64 layer and must not leak through —
    // a NaN ns_per_step would sail through every `>` comparison in
    // the trend gate.
    for bad in [
        "1e999",
        "-1e999",
        "1e99999999",
        "NaN",
        "Infinity",
        "-Infinity",
        "nan",
    ] {
        assert!(Json::parse(bad).is_err(), "{bad:?} must be rejected");
        assert!(
            Json::parse(&format!("{{\"ns_per_step\": {bad}}}")).is_err(),
            "{bad:?} must be rejected inside an object"
        );
    }
    // The largest finite doubles still parse.
    for ok in ["1e308", "-1e308", "1.7976931348623157e308", "0", "-0.0"] {
        let v = Json::parse(ok).unwrap();
        assert!(v.as_f64().unwrap().is_finite(), "{ok:?} is finite");
    }
}

#[test]
fn malformed_numbers_and_literals_error() {
    for bad in ["1.2.3", "1e", "--1", "+1", "1e+", "truefalse", "nullx"] {
        assert!(Json::parse(bad).is_err(), "{bad:?} must be rejected");
    }
}

#[test]
fn string_escapes_are_validated() {
    assert_eq!(
        Json::parse(r#""a\"b\\c\nd""#).unwrap().as_str(),
        Some("a\"b\\c\nd")
    );
    assert_eq!(Json::parse(r#""A""#).unwrap().as_str(), Some("A"));
    for bad in [
        r#""\x""#,     // unknown escape
        r#""\u12""#,   // short hex
        r#""\uZZZZ""#, // non-hex
        r#""\ud800""#, // lone surrogate: not a scalar value
        "\"\\",        // dangling escape at EOF
    ] {
        assert!(Json::parse(bad).is_err(), "{bad:?} must be rejected");
    }
}

#[test]
fn crlf_and_blank_lines_parse_as_json_lines() {
    // A trace file written on Windows or piped through a CRLF-normalising
    // tool still parses; blank lines (including whitespace-only) skip.
    let doc = "{\"t\":\"span\",\"kind\":\"prove\",\"cell\":0,\"start_us\":1,\"dur_us\":2}\r\n\
               \r\n\
               \t \r\n\
               {\"t\":\"manifest\",\"schema\":\"tp-telemetry/v1\",\"cells\":4}\r\n";
    let vals = parse_json_lines(doc).unwrap();
    assert_eq!(vals.len(), 2);
    assert_eq!(vals[0].get("kind").unwrap().as_str(), Some("prove"));
    assert_eq!(
        vals[1].get("schema").unwrap().as_str(),
        Some("tp-telemetry/v1")
    );
    // An error names the 1-based physical line, blank lines included.
    let err = parse_json_lines("{\"ok\":1}\r\n\r\n{oops\r\n").unwrap_err();
    assert!(err.starts_with("line 3:"), "{err}");
}

#[test]
fn hostile_run_records_error_cleanly() {
    // Shapes that parse as JSON but cannot be runs: every one must be a
    // clean Err out of RunRecord/Trajectory, never a panic or a
    // default-filled record.
    for bad in [
        r#"{"smoke": "yes"}"#,
        r#"{"smoke": true}"#,
        r#"{"smoke": true, "e11": {"ns_per_step": "fast"}, "exhaustive": {"programs_per_sec": 1}}"#,
        r#"{"smoke": true, "e11": 7, "exhaustive": {"programs_per_sec": 1}}"#,
        r#"[1, 2, 3]"#,
        "null",
    ] {
        let v = Json::parse(bad).unwrap();
        assert!(RunRecord::from_json(v).is_err(), "{bad:?} must be rejected");
    }
    for bad in [
        r#"{"schema": "tp-bench/matrix-v3"}"#,
        r#"{"schema": "tp-bench/matrix-v2", "runs": 1}"#,
        r#"{"runs": []}"#,
    ] {
        assert!(Trajectory::parse(bad).is_err(), "{bad:?} must be rejected");
    }
}

#[test]
fn deep_nesting_is_bounded_by_input_length_not_stack_death() {
    // 200 levels is far beyond anything the emitters write but well
    // within what a recursive-descent parser must survive.
    let depth = 200;
    let doc = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
    let mut v = Json::parse(&doc).unwrap();
    for _ in 0..depth {
        let Json::Arr(items) = v else {
            panic!("array expected");
        };
        v = items.into_iter().next().unwrap();
    }
    assert_eq!(v.as_f64(), Some(1.0));
    // Unbalanced variants still error.
    assert!(Json::parse(&"[".repeat(depth)).is_err());
}
