//! Page-colouring frame allocator (§4.1).
//!
//! "Partitioning of shared (physically-addressed) caches is possible
//! without extra hardware support by using page colouring. [...] By
//! ensuring that different security domains are allocated physical page
//! frames of disjoint colours, the OS can partition the cache between
//! domains."
//!
//! Frames are binned by the colour they map to in the shared LLC
//! (`pfn mod colours`). The allocator hands out frames only from a
//! domain's assigned colour set and records ghost ownership in
//! [`PhysMem`], which the `tp-core` partitioning checker later audits.

use tp_hw::mem::PhysMem;
use tp_hw::types::{Colour, DomainTag};

/// Errors from the colour allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The requested colour set is empty.
    NoColours,
    /// All frames of the permitted colours are in use.
    OutOfFrames {
        /// The colour set that was exhausted.
        colours_tried: usize,
    },
    /// A colour index exceeds the cache's colour count.
    BadColour {
        /// The offending colour.
        colour: Colour,
    },
}

/// A frame allocator that respects cache colours.
#[derive(Debug, Clone)]
pub struct ColourAllocator {
    /// Number of colours the LLC supports (1 = colouring impossible).
    colours: usize,
    /// Free lists per colour, each sorted descending so `pop` yields the
    /// lowest-numbered frame (determinism aid).
    free: Vec<Vec<u64>>,
}

impl ColourAllocator {
    /// Build an allocator over `frames` frames with `colours` LLC colours.
    /// Frames below `reserved` are withheld (boot/kernel image area gets
    /// allocated explicitly before general allocation starts).
    ///
    /// # Panics
    /// Panics if `colours == 0`.
    pub fn new(frames: usize, colours: usize, reserved: u64) -> Self {
        assert!(colours > 0, "need at least one colour");
        let mut free = vec![Vec::new(); colours];
        for pfn in (reserved..frames as u64).rev() {
            free[(pfn as usize) % colours].push(pfn);
        }
        ColourAllocator { colours, free }
    }

    /// The number of colours.
    pub fn colours(&self) -> usize {
        self.colours
    }

    /// Free frames remaining in `colour`.
    pub fn free_in(&self, colour: Colour) -> usize {
        self.free.get(colour.0 as usize).map(Vec::len).unwrap_or(0)
    }

    /// Allocate one frame of exactly `colour`, assigning it to `owner`.
    pub fn alloc_coloured(
        &mut self,
        mem: &mut PhysMem,
        colour: Colour,
        owner: DomainTag,
    ) -> Result<u64, AllocError> {
        let list = self
            .free
            .get_mut(colour.0 as usize)
            .ok_or(AllocError::BadColour { colour })?;
        let pfn = list
            .pop()
            .ok_or(AllocError::OutOfFrames { colours_tried: 1 })?;
        mem.assign(pfn, owner);
        Ok(pfn)
    }

    /// Allocate one frame from any of `colours` (round-robin by fill,
    /// preferring the colour with most free frames for balance).
    pub fn alloc_any(
        &mut self,
        mem: &mut PhysMem,
        colours: &[Colour],
        owner: DomainTag,
    ) -> Result<u64, AllocError> {
        if colours.is_empty() {
            return Err(AllocError::NoColours);
        }
        for c in colours {
            if (c.0 as usize) >= self.colours {
                return Err(AllocError::BadColour { colour: *c });
            }
        }
        let best = colours
            .iter()
            .max_by_key(|c| self.free[c.0 as usize].len())
            .copied()
            .expect("non-empty checked above");
        if self.free[best.0 as usize].is_empty() {
            return Err(AllocError::OutOfFrames {
                colours_tried: colours.len(),
            });
        }
        self.alloc_coloured(mem, best, owner)
    }

    /// Return a frame to the free pool.
    pub fn release(&mut self, mem: &mut PhysMem, pfn: u64) {
        mem.release(pfn);
        self.free[(pfn as usize) % self.colours].push(pfn);
    }

    /// Split the colour space into `n` disjoint, (nearly) equal parts,
    /// after reserving the first `kernel_colours` colours for the kernel
    /// (global kernel data must live in colours no domain can touch —
    /// the Case-2a argument of §5.2 depends on it).
    ///
    /// Returns `(kernel, per_domain)` colour sets.
    pub fn partition_colours(
        colours: usize,
        kernel_colours: usize,
        n: usize,
    ) -> (Vec<Colour>, Vec<Vec<Colour>>) {
        assert!(n > 0, "need at least one domain");
        assert!(
            kernel_colours + n <= colours,
            "cannot split {colours} colours into kernel={kernel_colours} + {n} domains"
        );
        let kernel: Vec<Colour> = (0..kernel_colours as u16).map(Colour).collect();
        let remaining: Vec<u16> = (kernel_colours as u16..colours as u16).collect();
        let per = remaining.len() / n;
        let mut out = Vec::with_capacity(n);
        for d in 0..n {
            let lo = d * per;
            let hi = if d == n - 1 {
                remaining.len()
            } else {
                lo + per
            };
            out.push(remaining[lo..hi].iter().copied().map(Colour).collect());
        }
        (kernel, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ColourAllocator, PhysMem) {
        (ColourAllocator::new(64, 8, 0), PhysMem::new(64))
    }

    #[test]
    fn allocated_frames_have_requested_colour() {
        let (mut a, mut m) = setup();
        for want in 0..8u16 {
            let pfn = a
                .alloc_coloured(&mut m, Colour(want), DomainTag(1))
                .unwrap();
            assert_eq!(pfn % 8, want as u64);
            assert_eq!(
                m.owner_of(tp_hw::types::PAddr::from_pfn(pfn, 0)),
                Some(DomainTag(1))
            );
        }
    }

    #[test]
    fn exhaustion_is_reported() {
        let mut a = ColourAllocator::new(8, 8, 0); // one frame per colour
        let mut m = PhysMem::new(8);
        a.alloc_coloured(&mut m, Colour(3), DomainTag(0)).unwrap();
        assert_eq!(
            a.alloc_coloured(&mut m, Colour(3), DomainTag(0)),
            Err(AllocError::OutOfFrames { colours_tried: 1 })
        );
    }

    #[test]
    fn release_recycles() {
        let (mut a, mut m) = setup();
        let pfn = a.alloc_coloured(&mut m, Colour(2), DomainTag(0)).unwrap();
        let before = a.free_in(Colour(2));
        a.release(&mut m, pfn);
        assert_eq!(a.free_in(Colour(2)), before + 1);
        assert_eq!(m.owner_of(tp_hw::types::PAddr::from_pfn(pfn, 0)), None);
    }

    #[test]
    fn alloc_any_balances() {
        let (mut a, mut m) = setup();
        let set = [Colour(1), Colour(2)];
        let mut counts = [0usize; 2];
        for _ in 0..8 {
            let pfn = a.alloc_any(&mut m, &set, DomainTag(0)).unwrap();
            counts[(pfn % 8) as usize - 1] += 1;
        }
        assert_eq!(counts, [4, 4], "allocation should balance across colours");
    }

    #[test]
    fn alloc_any_rejects_empty_and_bad() {
        let (mut a, mut m) = setup();
        assert_eq!(
            a.alloc_any(&mut m, &[], DomainTag(0)),
            Err(AllocError::NoColours)
        );
        assert_eq!(
            a.alloc_any(&mut m, &[Colour(99)], DomainTag(0)),
            Err(AllocError::BadColour { colour: Colour(99) })
        );
    }

    #[test]
    fn reserved_frames_are_withheld() {
        let a = ColourAllocator::new(16, 8, 8);
        let total: usize = (0..8).map(|c| a.free_in(Colour(c))).sum();
        assert_eq!(total, 8, "first 8 frames reserved");
    }

    #[test]
    fn partition_is_disjoint_and_exhaustive() {
        let (kernel, parts) = ColourAllocator::partition_colours(128, 4, 3);
        assert_eq!(kernel.len(), 4);
        let mut seen = std::collections::HashSet::new();
        for c in kernel.iter().chain(parts.iter().flatten()) {
            assert!(seen.insert(*c), "colour {c:?} assigned twice");
        }
        assert_eq!(seen.len(), 128, "every colour assigned");
        // Domains get 124/3 = 41,41,42.
        assert_eq!(parts[0].len(), 41);
        assert_eq!(parts[2].len(), 42);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn partition_rejects_too_many_domains() {
        ColourAllocator::partition_colours(4, 2, 3);
    }
}
