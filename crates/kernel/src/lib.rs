//! # tp-kernel — an seL4-style kernel substrate with time protection
//!
//! This crate models the OS side of *"Can We Prove Time Protection?"*
//! (HotOS 2019): a small time- and space-partitioning kernel in the style
//! of the seL4 time-protection branch of Ge et al. (EuroSys'19):
//!
//! * **Page-colouring frame allocation** ([`colour`]) partitions the
//!   shared LLC between domains (§4.1).
//! * **Kernel clone** ([`kclone`]) gives each domain a private kernel
//!   image in its own colours, because even read-only sharing of kernel
//!   text is a channel (§4.2).
//! * **Padded domain switches** ([`kernel`]) flush all time-shared
//!   microarchitectural state and pad the switch to
//!   `slice + pad`, hiding the history-dependent flush latency (§4.2).
//! * **Interrupt partitioning** masks every line not owned by the
//!   running domain (§4.2).
//! * **Deterministic IPC delivery** ([`ipc`]) erases send instants per
//!   Cock et al. (2014) (§3.2).
//!
//! Each mechanism can be disabled independently ([`config`]), which the
//! proof harness and the ablation experiment (E11) exploit.
//!
//! ## Example
//!
//! ```
//! use tp_hw::machine::MachineConfig;
//! use tp_kernel::config::{DomainSpec, KernelConfig};
//! use tp_kernel::program::IdleProgram;
//! use tp_kernel::kernel::System;
//!
//! let kcfg = KernelConfig::new(vec![
//!     DomainSpec::new(Box::new(IdleProgram)),
//!     DomainSpec::new(Box::new(IdleProgram)),
//! ]);
//! let mut sys = System::new(MachineConfig::tiny(), kcfg).unwrap();
//! sys.run_steps(100);
//! assert!(sys.now().0 > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod colour;
pub mod config;
pub mod domain;
pub mod ipc;
pub mod kclone;
pub mod kernel;
pub mod layout;
pub mod program;
pub mod vspace;

pub use config::{DomainSpec, KernelConfig, Mechanism, TimeProtConfig};
pub use domain::{DomState, Domain, DomainId, ObsEvent, Observation};
pub use kernel::{KernelError, StepEvent, SwitchReason, SwitchRecord, System};
pub use program::{Instr, Program, StepFeedback, SyscallReq, TraceProgram};
