//! Kernel images and the clone mechanism (§4.2).
//!
//! "As even read-only sharing of code is sufficient for creating a
//! channel, we also colour the kernel image. This is achieved by a
//! policy-free kernel clone mechanism, which allows setting up a
//! domain-private kernel image in coloured memory."
//!
//! A [`KernelImage`] is a set of modelled frames holding kernel text and
//! per-image data. Every kernel entry (trap, syscall, domain switch)
//! touches a *deterministic* physical footprint derived from the image —
//! this reproduces the Case-2a argument of §5.2: with a cloned image the
//! footprint lies in the domain's own colours; with a shared image it
//! occupies shared cache sets that a Flush+Reload-style probe can watch
//! (experiment E6).
//!
//! Global kernel data (scheduler queues, endpoint state) is *not* cloned;
//! it lives in kernel-reserved colours and is "accessed deterministically"
//! (§5.2), which the proof harness checks.

use crate::program::SyscallReq;
use tp_hw::types::{PAddr, LINE_SIZE};

/// Frames of kernel text per image.
pub const KTEXT_FRAMES: usize = 4;
/// Frames of per-image kernel data.
pub const KDATA_FRAMES: usize = 1;
/// Frames of global (shared, never cloned) kernel data.
pub const KGLOBAL_FRAMES: usize = 1;

/// A single kernel memory access in a handler footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KAccess {
    /// Physical address touched.
    pub paddr: PAddr,
    /// Store?
    pub write: bool,
    /// Instruction fetch (goes through the L1I)?
    pub fetch: bool,
}

/// Kernel operations with modelled footprints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelOp {
    /// Trap entry/exit path (every kernel entry pays this).
    Entry,
    /// A specific system call's handler.
    Syscall(SyscallKind),
    /// The domain-switch path (scheduler + context switch).
    Switch,
    /// Interrupt dispatch (on top of `Entry`).
    IrqDispatch,
}

/// Coarse classification of syscalls for footprint purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyscallKind {
    /// `Send`.
    Send,
    /// `Recv`.
    Recv,
    /// `IoSubmit`.
    Io,
    /// `Yield` / `Null`.
    Light,
    /// `MapPage` / `UnmapPage` (memory management).
    Mm,
}

impl SyscallKind {
    /// Classify a request.
    pub fn of(req: &SyscallReq) -> SyscallKind {
        match req {
            SyscallReq::Send { .. } => SyscallKind::Send,
            SyscallReq::Recv { .. } => SyscallKind::Recv,
            SyscallReq::IoSubmit { .. } => SyscallKind::Io,
            SyscallReq::Yield | SyscallReq::Null => SyscallKind::Light,
            SyscallReq::MapPage { .. } | SyscallReq::UnmapPage { .. } => SyscallKind::Mm,
        }
    }

    fn handler_index(self) -> u64 {
        match self {
            SyscallKind::Send => 0,
            SyscallKind::Recv => 1,
            SyscallKind::Io => 2,
            SyscallKind::Light => 3,
            SyscallKind::Mm => 4,
        }
    }
}

/// A kernel image: text and data frames plus footprint generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelImage {
    /// Frames holding kernel text, in layout order.
    pub text_frames: Vec<u64>,
    /// Frames holding per-image kernel data.
    pub data_frames: Vec<u64>,
}

impl KernelImage {
    /// Build an image over pre-allocated frames.
    ///
    /// # Panics
    /// Panics if the frame counts do not match
    /// [`KTEXT_FRAMES`]/[`KDATA_FRAMES`].
    pub fn new(text_frames: Vec<u64>, data_frames: Vec<u64>) -> Self {
        assert_eq!(text_frames.len(), KTEXT_FRAMES, "kernel text frame count");
        assert_eq!(data_frames.len(), KDATA_FRAMES, "kernel data frame count");
        KernelImage {
            text_frames,
            data_frames,
        }
    }

    /// All frames of the image.
    pub fn frames(&self) -> impl Iterator<Item = u64> + '_ {
        self.text_frames
            .iter()
            .chain(self.data_frames.iter())
            .copied()
    }

    fn text_line(&self, line_index: u64) -> PAddr {
        let lines_per_frame = tp_hw::types::PAGE_SIZE / LINE_SIZE;
        let frame =
            self.text_frames[(line_index / lines_per_frame) as usize % self.text_frames.len()];
        PAddr::from_pfn(frame, (line_index % lines_per_frame) * LINE_SIZE)
    }

    fn data_line(&self, line_index: u64) -> PAddr {
        let lines_per_frame = tp_hw::types::PAGE_SIZE / LINE_SIZE;
        let frame =
            self.data_frames[(line_index / lines_per_frame) as usize % self.data_frames.len()];
        PAddr::from_pfn(frame, (line_index % lines_per_frame) * LINE_SIZE)
    }

    /// The deterministic footprint of `op` within this image.
    ///
    /// Footprints depend only on `op` — never on user state or secrets —
    /// which is the "accessed deterministically" premise of §5.2.
    pub fn footprint(&self, op: KernelOp) -> Vec<KAccess> {
        let mut out = Vec::new();
        self.footprint_into(op, &mut out);
        out
    }

    /// [`KernelImage::footprint`] appended into a caller-supplied
    /// buffer — the kernel's allocation-free charging path.
    pub fn footprint_into(&self, op: KernelOp, out: &mut Vec<KAccess>) {
        let fetch = |out: &mut Vec<KAccess>, lines: core::ops::Range<u64>| {
            for l in lines {
                out.push(KAccess {
                    paddr: self.text_line(l),
                    write: false,
                    fetch: true,
                });
            }
        };
        match op {
            KernelOp::Entry => {
                // Trap vector + entry/exit stubs: text lines 0..4,
                // plus saving context to per-image data.
                fetch(out, 0..4);
                out.push(KAccess {
                    paddr: self.data_line(0),
                    write: true,
                    fetch: false,
                });
            }
            KernelOp::Syscall(kind) => {
                let h = kind.handler_index();
                // Handler bodies live at distinct, fixed text ranges.
                fetch(out, 16 + h * 8..16 + h * 8 + 6);
                out.push(KAccess {
                    paddr: self.data_line(1 + h),
                    write: false,
                    fetch: false,
                });
                out.push(KAccess {
                    paddr: self.data_line(1 + h),
                    write: true,
                    fetch: false,
                });
            }
            KernelOp::Switch => {
                fetch(out, 56..62);
                out.push(KAccess {
                    paddr: self.data_line(8),
                    write: true,
                    fetch: false,
                });
            }
            KernelOp::IrqDispatch => {
                fetch(out, 64..69);
                out.push(KAccess {
                    paddr: self.data_line(9),
                    write: true,
                    fetch: false,
                });
            }
        }
    }
}

/// Global kernel data: scheduler queues, endpoint state. Shared by all
/// images; lives in kernel-reserved colours.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalKernelData {
    /// Frames holding the global structures.
    pub frames: Vec<u64>,
}

impl GlobalKernelData {
    /// Build over pre-allocated frames.
    ///
    /// # Panics
    /// Panics if the frame count does not match [`KGLOBAL_FRAMES`].
    pub fn new(frames: Vec<u64>) -> Self {
        assert_eq!(
            frames.len(),
            KGLOBAL_FRAMES,
            "global kernel data frame count"
        );
        GlobalKernelData { frames }
    }

    /// Deterministic global-data footprint of `op` (scheduler state on
    /// switches, endpoint state on IPC, IRQ table on dispatch).
    pub fn footprint(&self, op: KernelOp) -> Vec<KAccess> {
        let mut out = Vec::new();
        self.footprint_into(op, &mut out);
        out
    }

    /// [`GlobalKernelData::footprint`] appended into a caller-supplied
    /// buffer — the kernel's allocation-free charging path.
    pub fn footprint_into(&self, op: KernelOp, out: &mut Vec<KAccess>) {
        let line = |i: u64| PAddr::from_pfn(self.frames[0], (i % 64) * LINE_SIZE);
        let mut push = |paddr: PAddr, write: bool| {
            out.push(KAccess {
                paddr,
                write,
                fetch: false,
            })
        };
        match op {
            KernelOp::Entry => push(line(0), false),
            KernelOp::Syscall(SyscallKind::Send) | KernelOp::Syscall(SyscallKind::Recv) => {
                push(line(1), false);
                push(line(1), true);
            }
            KernelOp::Syscall(SyscallKind::Io) => push(line(2), true),
            KernelOp::Syscall(SyscallKind::Light) => {}
            // Memory management touches the global frame-allocator state.
            KernelOp::Syscall(SyscallKind::Mm) => {
                push(line(6), false);
                push(line(6), true);
            }
            KernelOp::Switch => {
                push(line(3), false);
                push(line(3), true);
                push(line(4), true);
            }
            KernelOp::IrqDispatch => push(line(5), false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(base: u64) -> KernelImage {
        KernelImage::new(
            (base..base + KTEXT_FRAMES as u64).collect(),
            (base + 10..base + 10 + KDATA_FRAMES as u64).collect(),
        )
    }

    #[test]
    fn footprints_are_deterministic() {
        let img = image(0);
        assert_eq!(
            img.footprint(KernelOp::Entry),
            img.footprint(KernelOp::Entry)
        );
        assert_eq!(
            img.footprint(KernelOp::Syscall(SyscallKind::Send)),
            img.footprint(KernelOp::Syscall(SyscallKind::Send)),
        );
    }

    #[test]
    fn different_ops_have_different_footprints() {
        let img = image(0);
        let e = img.footprint(KernelOp::Entry);
        let s = img.footprint(KernelOp::Switch);
        assert_ne!(e, s);
        let send = img.footprint(KernelOp::Syscall(SyscallKind::Send));
        let recv = img.footprint(KernelOp::Syscall(SyscallKind::Recv));
        assert_ne!(send, recv, "distinct handlers live at distinct text");
    }

    #[test]
    fn cloned_image_has_disjoint_footprint() {
        let a = image(0);
        let b = image(100);
        let fa: Vec<_> = a
            .footprint(KernelOp::Entry)
            .iter()
            .map(|k| k.paddr)
            .collect();
        let fb: Vec<_> = b
            .footprint(KernelOp::Entry)
            .iter()
            .map(|k| k.paddr)
            .collect();
        for p in &fa {
            assert!(!fb.contains(p), "clone must not share frames");
        }
        // Same *structure* though: offsets within the image are identical.
        assert_eq!(fa.len(), fb.len());
        for (x, y) in fa.iter().zip(fb.iter()) {
            assert_eq!(x.page_offset(), y.page_offset());
        }
    }

    #[test]
    fn entry_fetches_through_icache() {
        let img = image(0);
        let fp = img.footprint(KernelOp::Entry);
        assert!(
            fp.iter().any(|k| k.fetch),
            "entry path executes kernel text"
        );
        assert!(fp.iter().any(|k| k.write && !k.fetch), "and saves context");
    }

    #[test]
    fn syscall_footprints_depend_only_on_kind() {
        assert_eq!(
            SyscallKind::of(&SyscallReq::Send { ep: 0, msg: 1 }),
            SyscallKind::of(&SyscallReq::Send { ep: 9, msg: 42 }),
            "payload must not change the kernel footprint"
        );
    }

    #[test]
    fn global_data_paths() {
        let g = GlobalKernelData::new(vec![50]);
        assert!(!g.footprint(KernelOp::Switch).is_empty());
        assert!(g
            .footprint(KernelOp::Syscall(SyscallKind::Light))
            .is_empty());
        for k in g.footprint(KernelOp::Switch) {
            assert_eq!(k.paddr.pfn(), 50);
            assert!(!k.fetch, "global data is data, not text");
        }
    }

    #[test]
    #[should_panic(expected = "kernel text frame count")]
    fn wrong_frame_count_rejected() {
        KernelImage::new(vec![1], vec![2]);
    }
}
