//! Security domains and their observations.
//!
//! §2: "a security domain refers to a subset of the system which is
//! treated as an opaque unit by the system's security policy. In OS
//! terms, a domain consists of one or more (cooperating) processes."
//! Our domains each run one deterministic [`Program`] in a private
//! [`VSpace`], under a per-domain slice/padding budget and a private set
//! of cache colours and interrupt lines.
//!
//! The [`Observation`] log records exactly what the domain's program can
//! architecturally see: clock reads, IPC deliveries, faults and its own
//! halting. Noninterference (§5.2) is stated over these logs: a Lo
//! domain's observation sequence must be identical across all Hi secrets.

use crate::program::{Program, StepFeedback};
use crate::vspace::VSpace;
use tp_hw::types::{Asid, Colour, Cycles, DomainTag, VAddr};

/// Index of a domain within the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainId(pub usize);

impl DomainId {
    /// The ghost tag for this domain.
    pub fn tag(self) -> DomainTag {
        DomainTag(self.0 as u16)
    }
}

/// Scheduling state of a domain's (single) thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomState {
    /// Ready to execute.
    Runnable,
    /// Blocked in `Recv` on an endpoint.
    BlockedRecv {
        /// Endpoint index.
        ep: usize,
    },
    /// Executed `Halt`; idles for its remaining slices.
    Halted,
}

/// One event a domain's program can architecturally observe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsEvent {
    /// Result of a `ReadClock`.
    Clock(Cycles),
    /// A message delivery: payload and the clock at delivery.
    IpcRecv {
        /// Payload.
        msg: u64,
        /// Receiver's clock at delivery.
        at: Cycles,
    },
    /// The program's access faulted (it sees the fault kind, not the
    /// kernel's internals).
    Fault,
    /// The program halted.
    Halted,
}

/// The full observation log of one domain.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Observation {
    /// Events in program order.
    pub events: Vec<ObsEvent>,
}

impl Observation {
    /// Clock values observed, in order.
    pub fn clocks(&self) -> Vec<Cycles> {
        self.events
            .iter()
            .filter_map(|e| match e {
                ObsEvent::Clock(c) => Some(*c),
                _ => None,
            })
            .collect()
    }

    /// IPC deliveries observed, in order.
    pub fn ipc_recvs(&self) -> Vec<(u64, Cycles)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                ObsEvent::IpcRecv { msg, at } => Some((*msg, *at)),
                _ => None,
            })
            .collect()
    }
}

/// A security domain.
#[derive(Debug, Clone)]
pub struct Domain {
    /// Kernel-assigned identity.
    pub id: DomainId,
    /// Address-space identifier.
    pub asid: Asid,
    /// The domain's address space.
    pub vspace: VSpace,
    /// Index into the kernel's image table (0 = the shared image).
    pub kimage: usize,
    /// Cache colours this domain may occupy.
    pub colours: Vec<Colour>,
    /// Time-slice length.
    pub slice: Cycles,
    /// Switch padding: the next domain starts no earlier than
    /// `slice_start + slice + pad` (§4.2; an attribute of the
    /// switched-*from* domain, set by the system designer).
    pub pad: Cycles,
    /// Interrupt lines owned by this domain.
    pub irq_lines: Vec<u8>,
    /// The program.
    pub program: Box<dyn Program>,
    /// Optional interim process (§4.3): executed during this domain's
    /// switch padding instead of busy-looping, reclaiming otherwise
    /// wasted cycles. Its microarchitectural effects are flushed before
    /// the next domain starts, so it cannot leak.
    pub pad_filler: Option<Box<dyn Program>>,
    /// How long before the padded switch target the filler must be
    /// preempted ("early enough to allow the kernel to switch domains
    /// without exceeding the pad time", §4.3). Must cover the flush
    /// WCET plus one filler instruction.
    pub filler_margin: Cycles,
    /// Current program counter.
    pub pc: VAddr,
    /// Scheduling state.
    pub state: DomState,
    /// Feedback pending for the next program step.
    pub feedback: StepFeedback,
    /// Everything the program has observed.
    pub obs: Observation,
    /// Number of instructions retired (diagnostics).
    pub retired: u64,
}

impl Domain {
    /// The ghost tag for this domain.
    pub fn tag(&self) -> DomainTag {
        self.id.tag()
    }

    /// Whether the domain can execute an instruction right now.
    pub fn runnable(&self) -> bool {
        matches!(self.state, DomState::Runnable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observation_filters() {
        let obs = Observation {
            events: vec![
                ObsEvent::Clock(Cycles(5)),
                ObsEvent::IpcRecv {
                    msg: 7,
                    at: Cycles(9),
                },
                ObsEvent::Fault,
                ObsEvent::Clock(Cycles(11)),
                ObsEvent::Halted,
            ],
        };
        assert_eq!(obs.clocks(), vec![Cycles(5), Cycles(11)]);
        assert_eq!(obs.ipc_recvs(), vec![(7, Cycles(9))]);
    }

    #[test]
    fn domain_tag_matches_id() {
        assert_eq!(DomainId(3).tag(), DomainTag(3));
    }
}
