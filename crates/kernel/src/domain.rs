//! Security domains and their observations.
//!
//! §2: "a security domain refers to a subset of the system which is
//! treated as an opaque unit by the system's security policy. In OS
//! terms, a domain consists of one or more (cooperating) processes."
//! Our domains each run one deterministic [`Program`] in a private
//! [`VSpace`], under a per-domain slice/padding budget and a private set
//! of cache colours and interrupt lines.
//!
//! The [`Observation`] log records exactly what the domain's program can
//! architecturally see: clock reads, IPC deliveries, faults and its own
//! halting. Noninterference (§5.2) is stated over these logs: a Lo
//! domain's observation sequence must be identical across all Hi secrets.
//!
//! Each domain's observations flow into a pluggable [`ObsSink`]
//! (`tp_hw::obs`): a [`tp_hw::obs::RecordingSink`] keeps the full log
//! (the default, and what every witness extractor needs), while a
//! [`tp_hw::obs::DigestSink`] folds events into a rolling digest as
//! they are emitted — the proof engine's trace-free hot path.

use crate::program::{Program, StepFeedback};
use crate::vspace::VSpace;
use tp_hw::obs::RecordingSink;
pub use tp_hw::obs::{NullSink, ObsEvent, ObsSink, ObsSinkKind, Observation};
use tp_hw::types::{Asid, Colour, Cycles, DomainTag, VAddr, PAGE_SIZE};

/// Index of a domain within the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainId(pub usize);

impl DomainId {
    /// The ghost tag for this domain.
    pub fn tag(self) -> DomainTag {
        DomainTag(self.0 as u16)
    }
}

/// Scheduling state of a domain's (single) thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomState {
    /// Ready to execute.
    Runnable,
    /// Blocked in `Recv` on an endpoint.
    BlockedRecv {
        /// Endpoint index.
        ep: usize,
    },
    /// Executed `Halt`; idles for its remaining slices.
    Halted,
}

/// A security domain.
#[derive(Debug, Clone)]
pub struct Domain {
    /// Kernel-assigned identity.
    pub id: DomainId,
    /// Address-space identifier.
    pub asid: Asid,
    /// The domain's address space.
    pub vspace: VSpace,
    /// Index into the kernel's image table (0 = the shared image).
    pub kimage: usize,
    /// Cache colours this domain may occupy.
    pub colours: Vec<Colour>,
    /// Time-slice length.
    pub slice: Cycles,
    /// Switch padding: the next domain starts no earlier than
    /// `slice_start + slice + pad` (§4.2; an attribute of the
    /// switched-*from* domain, set by the system designer).
    pub pad: Cycles,
    /// Interrupt lines owned by this domain.
    pub irq_lines: Vec<u8>,
    /// The program.
    pub program: Box<dyn Program>,
    /// Optional interim process (§4.3): executed during this domain's
    /// switch padding instead of busy-looping, reclaiming otherwise
    /// wasted cycles. Its microarchitectural effects are flushed before
    /// the next domain starts, so it cannot leak.
    pub pad_filler: Option<Box<dyn Program>>,
    /// How long before the padded switch target the filler must be
    /// preempted ("early enough to allow the kernel to switch domains
    /// without exceeding the pad time", §4.3). Must cover the flush
    /// WCET plus one filler instruction.
    pub filler_margin: Cycles,
    /// Current program counter.
    pub pc: VAddr,
    /// Scheduling state.
    pub state: DomState,
    /// Feedback pending for the next program step.
    pub feedback: StepFeedback,
    /// Where everything the program observes goes: a recording sink by
    /// default, a digest-only sink on the proof engine's hot path. A
    /// closed enum, so the kernel's per-event emit is a static dispatch.
    pub obs: ObsSinkKind,
    /// Cached size in bytes of the contiguous code window (see
    /// [`Domain::recompute_code_bytes`]): the PC-wrap modulus the
    /// kernel's fetch path reads every instruction. Kept in sync by the
    /// map/unmap syscalls instead of being rediscovered per fetch.
    pub code_bytes: u64,
    /// Number of instructions retired (diagnostics).
    pub retired: u64,
}

/// The default sink: record the full log, like the pre-sink kernel.
pub(crate) fn default_obs_sink() -> ObsSinkKind {
    ObsSinkKind::Recording(RecordingSink::default())
}

impl Domain {
    /// The ghost tag for this domain.
    pub fn tag(&self) -> DomainTag {
        self.id.tag()
    }

    /// Whether the domain can execute an instruction right now.
    pub fn runnable(&self) -> bool {
        matches!(self.state, DomState::Runnable)
    }

    /// Re-derive [`Domain::code_bytes`] from the current address space:
    /// the mapped-page count of the code window (at least one page).
    /// Called after any mapping change that touches the window.
    pub fn recompute_code_bytes(&mut self) {
        let window = crate::layout::CODE_VPN..crate::layout::CODE_VPN + 1024;
        let pages = self
            .vspace
            .iter()
            .filter(|(vpn, _)| window.contains(vpn))
            .count() as u64;
        self.code_bytes = (pages * PAGE_SIZE).max(PAGE_SIZE);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_tag_matches_id() {
        assert_eq!(DomainId(3).tag(), DomainTag(3));
    }

    #[test]
    fn default_sink_records() {
        let mut sink = default_obs_sink();
        sink.record(ObsEvent::Fault);
        assert_eq!(
            sink.observation().expect("default sink records").events,
            vec![ObsEvent::Fault]
        );
    }
}
