//! The kernel proper: scheduling, trap handling, domain switches with
//! flush + padding, IPC, and interrupt partitioning.
//!
//! [`System`] composes a [`Machine`] with a [`Kernel`] and exposes a
//! single-step interpreter. Each step is one of the paper's §5.2 cases:
//!
//! * **Case 1** — an ordinary user-mode instruction: fetched and executed
//!   through the modelled hierarchy, its cost a function of the domain's
//!   own partition (when protection is on).
//! * **Case 2a** — a trap (syscall/fault): the kernel's deterministic
//!   footprint is charged against the current domain's kernel image.
//! * **Case 2b** — preemption-timer expiry: the padded domain switch.
//!
//! The kernel never branches on ghost state or on another domain's
//! secrets; all cross-domain influence flows through the modelled
//! hardware, which is exactly what the proof harness then audits.

use crate::colour::{AllocError, ColourAllocator};
use crate::config::{KernelConfig, TimeProtConfig};
use crate::domain::{
    default_obs_sink, DomState, Domain, DomainId, ObsEvent, ObsSinkKind, Observation,
};
use crate::ipc::{Endpoint, QueuedMsg};
use crate::kclone::{
    GlobalKernelData, KAccess, KernelImage, KernelOp, SyscallKind, KDATA_FRAMES, KGLOBAL_FRAMES,
    KTEXT_FRAMES,
};
use crate::layout::{CODE_VPN, DATA_VPN};
use crate::program::{Instr, IpcDelivery, Program, StepFeedback, SyscallReq};
use crate::vspace::{MapError, Mapping, VSpace};
use tp_hw::irq::TIMER_LINE;
use tp_hw::machine::{Machine, MachineConfig};
use tp_hw::types::{Asid, Colour, CoreId, Cycles, DomainTag, VAddr, PAGE_SIZE};

/// Maximum cycles a single idle tick advances the clock.
const IDLE_QUANTUM: u64 = 64;

/// Errors during system construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// No domains were specified.
    NoDomains,
    /// Frame allocation failed.
    Alloc(AllocError),
    /// Page mapping failed.
    Map(MapError),
    /// Two domains claim the same interrupt line.
    IrqConflict {
        /// The contested line.
        line: u8,
    },
    /// A domain claims the preemption-timer line.
    TimerLineReserved,
    /// More domains than available colours.
    TooManyDomains {
        /// Domains requested.
        domains: usize,
        /// Colours available for domains.
        colours: usize,
    },
}

impl From<AllocError> for KernelError {
    fn from(e: AllocError) -> Self {
        KernelError::Alloc(e)
    }
}

impl From<MapError> for KernelError {
    fn from(e: MapError) -> Self {
        KernelError::Map(e)
    }
}

/// Why a domain switch happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchReason {
    /// Preemption-timer expiry (Case 2b).
    Timer,
    /// IPC send woke a blocked receiver (pipeline mode).
    Ipc,
    /// The running domain yielded.
    Yield,
}

/// A record of one domain switch, consumed by the padding-correctness
/// obligation (T) in `tp-core` and by experiment E4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchRecord {
    /// Switched-from domain.
    pub from: DomainId,
    /// Switched-to domain.
    pub to: DomainId,
    /// Why the switch happened.
    pub reason: SwitchReason,
    /// The switched-from domain's slice start.
    pub slice_start: Cycles,
    /// When the kernel began processing the switch.
    pub kernel_entered_at: Cycles,
    /// The padded start target (`slice_start + slice + pad`, or the IPC
    /// minimum-delivery target). Meaningful even when padding is off —
    /// it is what padding *would* have enforced.
    pub target: Cycles,
    /// When the next domain actually started.
    pub completed_at: Cycles,
    /// Whether padding was applied.
    pub padded: bool,
    /// Cycles by which the switch overran `target` (a pad-budget
    /// violation when padding is on).
    pub overrun: Option<Cycles>,
    /// Dirty lines written back by the switch flush (E4's channel input).
    pub flush_writebacks: usize,
}

/// What one [`System::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// A user instruction retired (Case 1).
    Instr {
        /// The executing domain.
        domain: DomainId,
    },
    /// A syscall was handled (Case 2a).
    Syscall {
        /// The calling domain.
        domain: DomainId,
    },
    /// A fault was delivered to the program.
    Fault {
        /// The faulting domain.
        domain: DomainId,
    },
    /// A domain switch completed (Case 2b or IPC).
    Switched {
        /// Switched-from domain.
        from: DomainId,
        /// Switched-to domain.
        to: DomainId,
        /// Why.
        reason: SwitchReason,
    },
    /// A device interrupt was dispatched during the current domain.
    IrqHandled {
        /// The line that fired.
        line: u8,
    },
    /// A blocked IPC receive completed.
    IpcDelivered {
        /// The receiving domain.
        domain: DomainId,
    },
    /// The current domain is blocked or halted; time idled forward.
    IdleTick,
}

/// The kernel state.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Active time-protection mechanisms.
    pub tp: TimeProtConfig,
    /// IPC-driven switching (Figure-1 pipeline mode).
    pub ipc_switch: bool,
    /// The domains, scheduled round-robin in index order.
    pub domains: Vec<Domain>,
    /// Endpoint table.
    pub endpoints: Vec<Endpoint>,
    /// Kernel images; index 0 is the shared image, clones follow.
    pub images: Vec<KernelImage>,
    /// Global (never cloned) kernel data.
    pub global: GlobalKernelData,
    /// Currently executing domain.
    pub current: DomainId,
    /// Clock value at which the current slice started.
    pub slice_start: Cycles,
    /// Preemption deadline of the current slice.
    pub deadline: Cycles,
    /// Log of all switches (obligation T's evidence).
    pub switch_log: Vec<SwitchRecord>,
    /// Count of pad-budget violations.
    pub pad_overruns: u64,
    /// `IoSubmit` calls denied by interrupt partitioning.
    pub io_denied: u64,
    /// Cycles reclaimed by interim-process padding (§4.3).
    pub filler_cycles_recovered: u64,
    /// The core this kernel schedules (single-core kernel instance).
    pub core: CoreId,
    /// Colour sets: `colour_assignment[d]` is domain `d`'s colours.
    pub colour_assignment: Vec<Vec<Colour>>,
    /// Colours reserved for the kernel.
    pub kernel_colours: Vec<Colour>,
    /// Frame allocator (retained for dynamic map/unmap).
    pub allocator: ColourAllocator,
    /// IRQ line ownership.
    irq_owner: [Option<DomainId>; 64],
    /// Scratch buffer for kernel-footprint charging: reused across
    /// every `charge_kernel` call instead of collecting a fresh vector
    /// per kernel entry. Always empty between steps.
    kaccess_scratch: Vec<KAccess>,
}

impl Kernel {
    /// The owner of interrupt `line`, if assigned.
    pub fn irq_owner(&self, line: u8) -> Option<DomainId> {
        self.irq_owner[line as usize]
    }

    /// The enable mask appropriate for `d` under the current policy.
    fn irq_mask_for(&self, d: DomainId) -> u64 {
        if self.tp.irq_partition {
            let mut m = 1u64 << TIMER_LINE;
            for line in &self.domains[d.0].irq_lines {
                m |= 1 << line;
            }
            m
        } else {
            u64::MAX
        }
    }
}

/// A machine plus a kernel scheduling its core 0.
#[derive(Debug, Clone)]
pub struct System {
    /// The modelled hardware.
    pub hw: Machine,
    /// The kernel.
    pub kernel: Kernel,
}

impl System {
    /// Build a system: allocate coloured memory, construct address
    /// spaces and kernel images, and install domain 0 as current.
    pub fn new(mcfg: MachineConfig, kcfg: KernelConfig) -> Result<Self, KernelError> {
        Self::from_parts(&mcfg, &kcfg)
    }

    /// [`System::new`] over borrowed configurations. Construction only
    /// reads them (programs are cloned in), so sweep drivers that fan a
    /// shared `Arc<KernelConfig>` across thousands of tasks build every
    /// system without cloning the configuration per run.
    pub fn from_parts(mcfg: &MachineConfig, kcfg: &KernelConfig) -> Result<Self, KernelError> {
        if kcfg.domains.is_empty() {
            return Err(KernelError::NoDomains);
        }
        let mut hw = Machine::new(mcfg.clone());
        let n = kcfg.domains.len();

        let llc_colours = hw.config().llc.map(|c| c.colours()).unwrap_or(1);
        let (kernel_colours, assignment): (Vec<Colour>, Vec<Vec<Colour>>) = if kcfg.tp.colouring {
            // The kernel keeps at least one colour for global data and
            // the shared image; every domain needs at least one of its
            // own. Too few colours means colouring cannot be deployed.
            if llc_colours < n + 1 {
                return Err(KernelError::TooManyDomains {
                    domains: n,
                    colours: llc_colours.saturating_sub(1),
                });
            }
            let kc = kcfg.kernel_colours.clamp(1, llc_colours - n);
            ColourAllocator::partition_colours(llc_colours, kc, n)
        } else {
            // No colouring: everyone draws from the full colour space.
            let all: Vec<Colour> = (0..llc_colours as u16).map(Colour).collect();
            (all.clone(), vec![all; n])
        };

        let mut alloc = ColourAllocator::new(hw.config().mem_frames, llc_colours, 0);

        // Global kernel data.
        let mut gframes = Vec::new();
        for _ in 0..KGLOBAL_FRAMES {
            let f = alloc.alloc_any(&mut hw.mem, &kernel_colours, DomainTag::KERNEL)?;
            hw.mem.frame_mut(f).kernel_image = true;
            gframes.push(f);
        }
        let global = GlobalKernelData::new(gframes);

        // Shared kernel image (image 0).
        let mut images = vec![Self::build_image(
            &mut alloc,
            &mut hw,
            &kernel_colours,
            DomainTag::KERNEL,
        )?];

        // Domains.
        let mut domains = Vec::with_capacity(n);
        let mut irq_owner: [Option<DomainId>; 64] = [None; 64];
        for (i, spec) in kcfg.domains.iter().enumerate() {
            let id = DomainId(i);
            let tag = id.tag();
            let colours = &assignment[i];

            for &line in &spec.irq_lines {
                if line == TIMER_LINE {
                    return Err(KernelError::TimerLineReserved);
                }
                if irq_owner[line as usize].is_some() {
                    return Err(KernelError::IrqConflict { line });
                }
                irq_owner[line as usize] = Some(id);
            }

            // Address space: root table + code + data windows.
            let root = alloc.alloc_any(&mut hw.mem, colours, tag)?;
            let mut vspace = VSpace::new(Asid(i as u16 + 1), root);
            let map_window = |vspace: &mut VSpace,
                              alloc: &mut ColourAllocator,
                              hw: &mut Machine,
                              base_vpn: u64,
                              pages: u64,
                              writable: bool|
             -> Result<(), KernelError> {
                for p in 0..pages {
                    let vpn = base_vpn + p;
                    let frame = alloc.alloc_any(&mut hw.mem, colours, tag)?;
                    let table = if vspace.has_leaf_for(vpn) {
                        None
                    } else {
                        Some(alloc.alloc_any(&mut hw.mem, colours, tag)?)
                    };
                    vspace.map(
                        vpn,
                        Mapping {
                            pfn: frame,
                            writable,
                            global: false,
                        },
                        table,
                    )?;
                }
                Ok(())
            };
            map_window(
                &mut vspace,
                &mut alloc,
                &mut hw,
                CODE_VPN,
                spec.code_pages,
                false,
            )?;
            map_window(
                &mut vspace,
                &mut alloc,
                &mut hw,
                DATA_VPN,
                spec.data_pages,
                true,
            )?;

            // Kernel image: cloned into the domain's colours, or shared.
            let kimage = if kcfg.tp.kernel_clone {
                images.push(Self::build_image(&mut alloc, &mut hw, colours, tag)?);
                images.len() - 1
            } else {
                0
            };

            domains.push(Domain {
                id,
                asid: Asid(i as u16 + 1),
                vspace,
                kimage,
                colours: colours.clone(),
                slice: spec.slice,
                pad: spec.pad,
                irq_lines: spec.irq_lines.clone(),
                program: spec.program.clone(),
                pad_filler: spec.pad_filler.clone(),
                filler_margin: spec.filler_margin,
                pc: crate::layout::CODE_BASE,
                state: DomState::Runnable,
                feedback: StepFeedback::default(),
                obs: default_obs_sink(),
                code_bytes: (spec.code_pages * PAGE_SIZE).max(PAGE_SIZE),
                retired: 0,
            });
        }

        let endpoints = kcfg.endpoints.iter().map(|s| Endpoint::new(*s)).collect();

        let deadline = domains[0].slice;
        let kernel = Kernel {
            tp: kcfg.tp,
            ipc_switch: kcfg.ipc_switch,
            domains,
            endpoints,
            images,
            global,
            current: DomainId(0),
            slice_start: Cycles::ZERO,
            deadline,
            switch_log: Vec::new(),
            pad_overruns: 0,
            io_denied: 0,
            filler_cycles_recovered: 0,
            core: CoreId(0),
            colour_assignment: assignment,
            kernel_colours,
            allocator: alloc,
            irq_owner,
            kaccess_scratch: Vec::new(),
        };
        let mask = kernel.irq_mask_for(DomainId(0));
        let mut sys = System { hw, kernel };
        sys.hw.irq.set_enabled_mask(mask);
        Ok(sys)
    }

    fn build_image(
        alloc: &mut ColourAllocator,
        hw: &mut Machine,
        colours: &[Colour],
        owner: DomainTag,
    ) -> Result<KernelImage, KernelError> {
        let mut text = Vec::new();
        let mut data = Vec::new();
        for _ in 0..KTEXT_FRAMES {
            let f = alloc.alloc_any(&mut hw.mem, colours, owner)?;
            hw.mem.frame_mut(f).kernel_image = true;
            text.push(f);
        }
        for _ in 0..KDATA_FRAMES {
            let f = alloc.alloc_any(&mut hw.mem, colours, owner)?;
            hw.mem.frame_mut(f).kernel_image = true;
            data.push(f);
        }
        Ok(KernelImage::new(text, data))
    }

    /// Replace domain `d`'s program, leaving every other piece of state
    /// untouched. Only sound on a pristine system (no steps taken yet):
    /// construction never looks at program *content*, so a fresh system
    /// with a swapped program is indistinguishable from one built with
    /// that program in its [`KernelConfig`]. [`SystemTemplate`] builds
    /// on this to amortise construction across many runs.
    pub fn replace_program(&mut self, d: DomainId, program: Box<dyn Program>) {
        let dom = &mut self.kernel.domains[d.0];
        debug_assert_eq!(
            dom.retired, 0,
            "replace_program is only sound before the system has stepped"
        );
        dom.program = program;
    }

    /// The observation log of `d`. Panics when `d`'s sink is
    /// digest-only — use [`System::observation_opt`] (or the digest
    /// accessors) on systems that might run trace-free.
    pub fn observation(&self, d: DomainId) -> &Observation {
        self.observation_opt(d)
            .expect("observation() needs a recording sink; this system runs digest-only")
    }

    /// The observation log of `d`, if its sink retains one.
    pub fn observation_opt(&self, d: DomainId) -> Option<&Observation> {
        self.kernel.domains[d.0].obs.observation()
    }

    /// Number of events `d` has observed (works under any sink).
    pub fn obs_len(&self, d: DomainId) -> usize {
        self.kernel.domains[d.0].obs.len()
    }

    /// Rolling digest of `d`'s observation log (works under any sink;
    /// equals `obs_digest` of the recorded events when recording).
    pub fn obs_digest(&self, d: DomainId) -> u64 {
        self.kernel.domains[d.0].obs.digest()
    }

    /// Take `d`'s recorded event buffer out of the system (leaving the
    /// sink empty), if its sink retains one — the allocation-reuse exit
    /// of a recording run that is about to be dropped.
    pub fn take_observation(&mut self, d: DomainId) -> Option<Vec<ObsEvent>> {
        self.kernel.domains[d.0].obs.take_events()
    }

    /// Replace domain `d`'s observation sink (any of the
    /// [`ObsSinkKind`] variants, or a bare sink via its `From` impl).
    /// Only sound before the domain has observed anything: events
    /// already in the old sink are discarded, so swapping mid-run would
    /// rewrite history.
    pub fn set_obs_sink(&mut self, d: DomainId, sink: impl Into<ObsSinkKind>) {
        let dom = &mut self.kernel.domains[d.0];
        debug_assert!(
            dom.obs.is_empty(),
            "set_obs_sink is only sound before the domain has observed anything"
        );
        dom.obs = sink.into();
    }

    /// Switch every domain to a digest-only sink: the trace-free proof
    /// hot path. Only sound on a pristine system (see
    /// [`System::set_obs_sink`]); sinks never influence execution, so a
    /// digest-only run's machine behaviour is bit-identical to a
    /// recording run's.
    pub fn use_digest_sinks(&mut self) {
        for i in 0..self.kernel.domains.len() {
            self.set_obs_sink(DomainId(i), tp_hw::obs::DigestSink::default());
        }
    }

    /// Whether every domain has halted.
    pub fn all_halted(&self) -> bool {
        self.kernel
            .domains
            .iter()
            .all(|d| matches!(d.state, DomState::Halted))
    }

    /// Current clock of the scheduled core.
    pub fn now(&self) -> Cycles {
        self.hw.now(self.kernel.core)
    }

    /// Run `n` steps; returns the events.
    pub fn run_steps(&mut self, n: usize) -> Vec<StepEvent> {
        (0..n).map(|_| self.step()).collect()
    }

    /// Run until the clock passes `budget` cycles (or `max_steps` as a
    /// safety net). Returns the number of steps taken.
    pub fn run_cycles(&mut self, budget: Cycles, max_steps: usize) -> usize {
        let mut steps = 0;
        while self.now().0 < budget.0 && steps < max_steps {
            self.step();
            steps += 1;
        }
        steps
    }

    /// Execute one step of the system.
    pub fn step(&mut self) -> StepEvent {
        let core = self.kernel.core;
        let now = self.hw.now(core);

        // Case 2b: preemption due?
        if now.0 >= self.kernel.deadline.0 {
            let (from, to) = self.switch_domain(SwitchReason::Timer, None);
            return StepEvent::Switched {
                from,
                to,
                reason: SwitchReason::Timer,
            };
        }

        // Device interrupts (the timer is modelled by the deadline check).
        if let Some(p) = self.hw.poll_irq(core) {
            if p.line != TIMER_LINE {
                self.hw.irq.ack(p.line);
                self.hw.charge_irq_entry(core);
                self.charge_kernel(KernelOp::Entry);
                self.charge_kernel(KernelOp::IrqDispatch);
                return StepEvent::IrqHandled { line: p.line };
            }
            self.hw.irq.ack(TIMER_LINE);
        }

        let cur = self.kernel.current;
        match self.kernel.domains[cur.0].state {
            DomState::Halted => {
                self.idle_tick();
                StepEvent::IdleTick
            }
            DomState::BlockedRecv { ep } => {
                let now = self.hw.now(core);
                let msg = self.kernel.endpoints[ep].take_deliverable(now);
                match msg {
                    Some(m) => {
                        self.kernel.endpoints[ep].take_waiting();
                        self.deliver_ipc(cur, m);
                        StepEvent::IpcDelivered { domain: cur }
                    }
                    None => {
                        self.idle_tick();
                        StepEvent::IdleTick
                    }
                }
            }
            DomState::Runnable => self.exec_instr(cur),
        }
    }

    /// Advance the clock while the current domain cannot run: to the next
    /// interesting instant (deadline, message-ready time), capped at
    /// [`IDLE_QUANTUM`]. Deterministic in the system state.
    fn idle_tick(&mut self) {
        let core = self.kernel.core;
        let now = self.hw.now(core);
        let mut until = self.kernel.deadline;
        if let DomState::BlockedRecv { ep } = self.kernel.domains[self.kernel.current.0].state {
            if let Some(r) = self.kernel.endpoints[ep].next_ready_at() {
                if r.0 > now.0 && r.0 < until.0 {
                    until = r;
                }
            }
        }
        let delta = until.saturating_sub(now).0.clamp(1, IDLE_QUANTUM);
        self.hw.compute(core, delta);
    }

    /// Deliver a message into a blocked receiver.
    fn deliver_ipc(&mut self, d: DomainId, m: QueuedMsg) {
        self.charge_kernel(KernelOp::Entry);
        self.charge_kernel(KernelOp::Syscall(SyscallKind::Recv));
        let at = self.hw.now(self.kernel.core);
        let dom = &mut self.kernel.domains[d.0];
        dom.state = DomState::Runnable;
        dom.feedback.ipc = Some(IpcDelivery { msg: m.msg, at });
        dom.obs.record(ObsEvent::IpcRecv { msg: m.msg, at });
    }

    /// Charge the kernel's deterministic footprint for `op`, using the
    /// current domain's kernel image plus global data. Ghost line
    /// ownership follows frame ownership, so cloned-image lines count as
    /// the domain's for the partitioning invariant.
    fn charge_kernel(&mut self, op: KernelOp) {
        let core = self.kernel.core;
        let img = self.kernel.domains[self.kernel.current.0].kimage;
        // One scratch buffer reused across every kernel entry: footprints
        // are written into it in place of three per-op allocations.
        let mut accesses = core::mem::take(&mut self.kernel.kaccess_scratch);
        accesses.clear();
        self.kernel.images[img].footprint_into(op, &mut accesses);
        self.kernel.global.footprint_into(op, &mut accesses);
        for k in &accesses {
            let owner = self.hw.mem.owner_of(k.paddr).unwrap_or(DomainTag::KERNEL);
            // Kernel frames are always in modelled memory by construction.
            let _ = self.hw.access_phys(core, k.paddr, k.write, k.fetch, owner);
        }
        accesses.clear();
        self.kernel.kaccess_scratch = accesses;
    }

    /// Execute one user instruction of `d` (Case 1, possibly trapping
    /// into Case 2a).
    fn exec_instr(&mut self, d: DomainId) -> StepEvent {
        let core = self.kernel.core;

        // Fetch. A fetch fault halts the domain (it cannot make progress).
        {
            let dom = &mut self.kernel.domains[d.0];
            let pc = dom.pc;
            let asid = dom.asid;
            let tag = dom.id.tag();
            if let Err(_f) = self.hw.fetch_virt(core, asid, pc, &dom.vspace, tag) {
                dom.state = DomState::Halted;
                // The one multi-event step: both events are folded by a
                // single step-granular batch flush, not two sink calls.
                dom.obs.record_batch(&[ObsEvent::Fault, ObsEvent::Halted]);
                return StepEvent::Fault { domain: d };
            }
        }

        // Ask the program for the next instruction.
        let instr = {
            let dom = &mut self.kernel.domains[d.0];
            let fb = core::mem::take(&mut dom.feedback);
            dom.program.next(&fb)
        };

        // Advance the PC (wrapping within the code window so linear
        // programs never run off their text; branches override). The
        // window size is cached on the domain — map/unmap keep it in
        // sync — so the fetch path never walks the page-table map.
        let code_bytes = self.kernel.domains[d.0].code_bytes;
        let bump_pc = |dom: &mut Domain| {
            let off = (dom.pc.0 + 4 - crate::layout::CODE_BASE.0) % code_bytes;
            dom.pc = VAddr(crate::layout::CODE_BASE.0 + off);
        };

        let tag = d.tag();
        let asid = self.kernel.domains[d.0].asid;
        match instr {
            Instr::Load(va) | Instr::Store(va) => {
                let write = matches!(instr, Instr::Store(_));
                let res = {
                    let dom = &self.kernel.domains[d.0];
                    self.hw.access_virt(core, asid, va, write, &dom.vspace, tag)
                };
                let dom = &mut self.kernel.domains[d.0];
                if let Err(f) = res {
                    dom.feedback.fault = Some(f);
                    dom.obs.record(ObsEvent::Fault);
                    bump_pc(dom);
                    dom.retired += 1;
                    return StepEvent::Fault { domain: d };
                }
                bump_pc(dom);
                dom.retired += 1;
                StepEvent::Instr { domain: d }
            }
            Instr::Branch { taken, target } => {
                let pc = self.kernel.domains[d.0].pc;
                self.hw.branch(core, pc, taken, target, tag);
                let dom = &mut self.kernel.domains[d.0];
                if taken {
                    dom.pc = target;
                } else {
                    bump_pc(dom);
                }
                dom.retired += 1;
                StepEvent::Instr { domain: d }
            }
            Instr::Compute(u) => {
                self.hw.compute(core, u);
                let dom = &mut self.kernel.domains[d.0];
                bump_pc(dom);
                dom.retired += 1;
                StepEvent::Instr { domain: d }
            }
            Instr::ReadClock => {
                let t = self.hw.read_clock(core);
                let dom = &mut self.kernel.domains[d.0];
                dom.feedback.clock = Some(t);
                dom.obs.record(ObsEvent::Clock(t));
                bump_pc(dom);
                dom.retired += 1;
                StepEvent::Instr { domain: d }
            }
            Instr::Halt => {
                let dom = &mut self.kernel.domains[d.0];
                dom.state = DomState::Halted;
                dom.obs.record(ObsEvent::Halted);
                StepEvent::Instr { domain: d }
            }
            Instr::Syscall(req) => {
                let dom = &mut self.kernel.domains[d.0];
                bump_pc(dom);
                dom.retired += 1;
                self.handle_syscall(d, req)
            }
        }
    }

    /// Case 2a: the kernel path for a syscall.
    fn handle_syscall(&mut self, d: DomainId, req: SyscallReq) -> StepEvent {
        self.charge_kernel(KernelOp::Entry);
        self.charge_kernel(KernelOp::Syscall(SyscallKind::of(&req)));
        let core = self.kernel.core;

        match req {
            SyscallReq::Null => StepEvent::Syscall { domain: d },
            SyscallReq::MapPage { vpn } => {
                self.sys_map_page(d, vpn);
                StepEvent::Syscall { domain: d }
            }
            SyscallReq::UnmapPage { vpn } => {
                self.sys_unmap_page(d, vpn);
                StepEvent::Syscall { domain: d }
            }
            SyscallReq::Yield => {
                let (from, to) = self.switch_domain(SwitchReason::Yield, None);
                StepEvent::Switched {
                    from,
                    to,
                    reason: SwitchReason::Yield,
                }
            }
            SyscallReq::IoSubmit { line, delay } => {
                let allowed =
                    !self.kernel.tp.irq_partition || self.kernel.irq_owner(line) == Some(d);
                if allowed && line != TIMER_LINE && line < tp_hw::irq::NUM_LINES {
                    let fire = self.hw.now(core) + Cycles(delay);
                    self.hw.irq.arm_timer(line, fire);
                } else {
                    self.kernel.io_denied += 1;
                }
                StepEvent::Syscall { domain: d }
            }
            SyscallReq::Send { ep, msg } => {
                if ep >= self.kernel.endpoints.len() {
                    self.kernel.domains[d.0].feedback.fault = None;
                    return StepEvent::Syscall { domain: d };
                }
                let now = self.hw.now(core);
                let slice_start = self.kernel.slice_start;
                let spec = self.kernel.endpoints[ep].spec();
                let ready_at = if self.kernel.tp.deterministic_ipc {
                    match spec.min_delivery {
                        Some(min) => {
                            let t = slice_start + min;
                            if t.0 >= now.0 {
                                t
                            } else {
                                now
                            }
                        }
                        None => now,
                    }
                } else {
                    now
                };
                self.kernel.endpoints[ep].send_at(msg, d, ready_at);

                // Pipeline mode: wake the blocked receiver by switching.
                if self.kernel.ipc_switch {
                    if let Some(rx) = self.kernel.endpoints[ep].waiting() {
                        if rx != d {
                            let (from, to) =
                                self.switch_domain(SwitchReason::Ipc, Some((rx, ready_at)));
                            return StepEvent::Switched {
                                from,
                                to,
                                reason: SwitchReason::Ipc,
                            };
                        }
                    }
                }
                StepEvent::Syscall { domain: d }
            }
            SyscallReq::Recv { ep } => {
                if ep >= self.kernel.endpoints.len() {
                    return StepEvent::Syscall { domain: d };
                }
                let now = self.hw.now(core);
                if let Some(m) = self.kernel.endpoints[ep].take_deliverable(now) {
                    self.deliver_ipc(d, m);
                    StepEvent::IpcDelivered { domain: d }
                } else {
                    self.kernel.endpoints[ep].set_waiting(d);
                    self.kernel.domains[d.0].state = DomState::BlockedRecv { ep };
                    StepEvent::Syscall { domain: d }
                }
            }
        }
    }

    /// `MapPage`: back `vpn` with a fresh frame from the caller's own
    /// colours. Already-mapped pages and allocation failures are silent
    /// no-ops (the program discovers the outcome by accessing the page).
    fn sys_map_page(&mut self, d: DomainId, vpn: u64) {
        let k = &mut self.kernel;
        let dom = &mut k.domains[d.0];
        if dom.vspace.mapping(vpn).is_some() {
            return;
        }
        let colours = dom.colours.clone();
        let tag = d.tag();
        let Ok(frame) = k.allocator.alloc_any(&mut self.hw.mem, &colours, tag) else {
            return;
        };
        let table = if dom.vspace.has_leaf_for(vpn) {
            None
        } else {
            match k.allocator.alloc_any(&mut self.hw.mem, &colours, tag) {
                Ok(f) => Some(f),
                Err(_) => {
                    k.allocator.release(&mut self.hw.mem, frame);
                    return;
                }
            }
        };
        let mapped = dom.vspace.map(
            vpn,
            Mapping {
                pfn: frame,
                writable: true,
                global: false,
            },
            table,
        );
        if mapped.is_err() {
            k.allocator.release(&mut self.hw.mem, frame);
            if let Some(t) = table {
                k.allocator.release(&mut self.hw.mem, t);
            }
        } else if (CODE_VPN..CODE_VPN + 1024).contains(&vpn) {
            dom.recompute_code_bytes();
        }
    }

    /// `UnmapPage`: remove the mapping, return the frame to the caller's
    /// colour pool, and invalidate the TLB entry — the §5.3 consistency
    /// step without which a stale translation would survive.
    fn sys_unmap_page(&mut self, d: DomainId, vpn: u64) {
        let k = &mut self.kernel;
        let dom = &mut k.domains[d.0];
        if let Ok(m) = dom.vspace.unmap(vpn) {
            let asid = dom.asid;
            self.hw.cores[k.core.0]
                .tlb
                .invalidate_page(asid, VAddr(vpn << tp_hw::types::PAGE_BITS));
            k.allocator.release(&mut self.hw.mem, m.pfn);
            if (CODE_VPN..CODE_VPN + 1024).contains(&vpn) {
                dom.recompute_code_bytes();
            }
        }
    }

    /// Run the switched-from domain's interim process until
    /// `target - filler_margin` (§4.3). Only a restricted instruction
    /// set executes (memory, compute, branches); control instructions
    /// degrade to one-cycle no-ops. Cycles consumed are tallied in
    /// [`Kernel::filler_cycles_recovered`].
    fn run_pad_filler(&mut self, d: DomainId, target: Cycles) {
        let core = self.kernel.core;
        let margin = self.kernel.domains[d.0].filler_margin;
        let stop_at = target.saturating_sub(margin);
        let started = self.hw.now(core);
        let asid = self.kernel.domains[d.0].asid;
        let tag = d.tag();
        let fb = StepFeedback::default();
        while self.hw.now(core).0 < stop_at.0 {
            let dom = &mut self.kernel.domains[d.0];
            let filler = dom.pad_filler.as_mut().expect("checked by caller");
            let instr = filler.next(&fb);
            match instr {
                Instr::Load(va) | Instr::Store(va) => {
                    let write = matches!(instr, Instr::Store(_));
                    let dom = &self.kernel.domains[d.0];
                    // Faults in the filler are silently dropped: the
                    // interim process has no observer to report to.
                    let _ = self.hw.access_virt(core, asid, va, write, &dom.vspace, tag);
                }
                Instr::Compute(u) => {
                    self.hw.compute(core, u);
                }
                Instr::Branch { taken, target } => {
                    self.hw
                        .branch(core, crate::layout::CODE_BASE, taken, target, tag);
                }
                // No clock reads, syscalls or halting inside the pad:
                // these degrade to a cycle of compute.
                Instr::ReadClock | Instr::Syscall(_) | Instr::Halt => {
                    self.hw.compute(core, 1);
                }
            }
        }
        self.kernel.filler_cycles_recovered += (self.hw.now(core) - started).0;
    }

    /// Case 2b (and friends): switch away from the current domain.
    ///
    /// `ipc_target`: for IPC-driven switches, the receiver and the
    /// deterministic delivery target to pad towards.
    fn switch_domain(
        &mut self,
        reason: SwitchReason,
        ipc_target: Option<(DomainId, Cycles)>,
    ) -> (DomainId, DomainId) {
        let core = self.kernel.core;
        let from = self.kernel.current;
        let slice_start = self.kernel.slice_start;
        let entered = self.hw.now(core);

        // The padded start target (§4.2): previous slice + its pad, or
        // the IPC minimum-delivery instant.
        let pad = self.kernel.domains[from.0].pad;
        let target = match ipc_target {
            Some((_, t)) => t,
            None => slice_start + self.kernel.domains[from.0].slice + pad,
        };

        // Kernel switch path (charged against the *from* image).
        self.charge_kernel(KernelOp::Entry);
        self.charge_kernel(KernelOp::Switch);

        // Interim-process padding (§4.3): instead of burning the pad in
        // a busy loop, run the switched-from domain's filler until the
        // preemption margin, then flush as usual. All of the filler's
        // microarchitectural effects are erased by the flush below, so
        // how much it ran (which depends on when the switch began, and
        // hence possibly on secrets) is invisible to the next domain.
        if self.kernel.tp.pad_switch && self.kernel.domains[from.0].pad_filler.is_some() {
            self.run_pad_filler(from, target);
        }

        // Flush time-shared state (§4.1). The latency is history
        // dependent; padding below hides it.
        let mut flush_writebacks = 0;
        if self.kernel.tp.flush_on_switch {
            let (_c, out) = self.hw.flush_core_local(core);
            flush_writebacks = out.writebacks;
        }
        if self.kernel.tp.flush_llc_on_switch {
            let (_c, out) = self.hw.flush_llc(core);
            flush_writebacks += out.writebacks;
        }

        let to = match ipc_target {
            Some((rx, _)) => rx,
            None => DomainId((from.0 + 1) % self.kernel.domains.len()),
        };

        // Interrupt partitioning (§4.2): only the incoming domain's
        // lines (plus the timer) are unmasked.
        let mask = self.kernel.irq_mask_for(to);
        self.hw.irq.set_enabled_mask(mask);

        // Padding (§4.2).
        let (padded, overrun) = if self.kernel.tp.pad_switch {
            match self.hw.pad_to(core, target) {
                Ok(_) => (true, None),
                Err(o) => {
                    self.kernel.pad_overruns += 1;
                    (true, Some(o))
                }
            }
        } else {
            (false, None)
        };

        let completed = self.hw.now(core);
        self.kernel.current = to;
        self.kernel.slice_start = completed;
        self.kernel.deadline = completed + self.kernel.domains[to.0].slice;
        self.kernel.switch_log.push(SwitchRecord {
            from,
            to,
            reason,
            slice_start,
            kernel_entered_at: entered,
            target,
            completed_at: completed,
            padded,
            overrun,
            flush_writebacks,
        });
        (from, to)
    }
}

/// A frame-allocation reuse path for [`System::new`]: build the system
/// once, then stamp out cheap pristine copies for every run.
///
/// Sweep drivers like the exhaustive checker construct on the order of
/// 1.5k systems per configuration, and full construction (colour-aware
/// frame allocation, page-table assembly, kernel-image cloning) is the
/// dominant cost of each small run. Construction is deterministic and
/// independent of program *content*, so a template clones its pristine
/// system — a flat memcpy of frames, tables and caches — instead of
/// re-deriving all of it, and [`SystemTemplate::instantiate_with_program`]
/// swaps in the per-run program afterwards. The copies are
/// indistinguishable from freshly built systems (the digest tests in
/// `tp-core` pin this), so checkers keep their bit-identical-verdict
/// guarantee.
#[derive(Debug, Clone)]
pub struct SystemTemplate {
    pristine: System,
}

impl SystemTemplate {
    /// Build the template's pristine system once.
    pub fn new(mcfg: MachineConfig, kcfg: KernelConfig) -> Result<Self, KernelError> {
        Ok(SystemTemplate {
            pristine: System::new(mcfg, kcfg)?,
        })
    }

    /// Convert the template's pristine system to digest-only sinks, so
    /// every stamped copy starts trace-free without a per-run sink
    /// swap — the exhaustive checker's hot-path template.
    pub fn with_digest_sinks(mut self) -> Self {
        self.pristine.use_digest_sinks();
        self
    }

    /// A fresh system, identical to one built by [`System::new`] with
    /// the template's configuration.
    pub fn instantiate(&self) -> System {
        self.pristine.clone()
    }

    /// A fresh system with domain `d`'s program replaced — the per-run
    /// fast path of the exhaustive checker.
    pub fn instantiate_with_program(&self, d: DomainId, program: Box<dyn Program>) -> System {
        let mut sys = self.pristine.clone();
        sys.replace_program(d, program);
        sys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DomainSpec;
    use crate::ipc::EndpointSpec;
    use crate::layout::data_addr;
    use crate::program::{IdleProgram, TraceProgram};

    fn two_idle(tp: TimeProtConfig) -> System {
        let kcfg = KernelConfig::new(vec![
            DomainSpec::new(Box::new(IdleProgram))
                .with_slice(Cycles(2_000))
                .with_pad(Cycles(8_000)),
            DomainSpec::new(Box::new(IdleProgram))
                .with_slice(Cycles(2_000))
                .with_pad(Cycles(8_000)),
        ])
        .with_tp(tp);
        System::new(MachineConfig::single_core(), kcfg).unwrap()
    }

    #[test]
    fn construction_rejects_empty() {
        let kcfg = KernelConfig::new(vec![]);
        assert_eq!(
            System::new(MachineConfig::tiny(), kcfg).err(),
            Some(KernelError::NoDomains)
        );
    }

    #[test]
    fn construction_rejects_irq_conflicts() {
        let kcfg = KernelConfig::new(vec![
            DomainSpec::new(Box::new(IdleProgram)).with_irq_lines(vec![4]),
            DomainSpec::new(Box::new(IdleProgram)).with_irq_lines(vec![4]),
        ]);
        assert_eq!(
            System::new(MachineConfig::single_core(), kcfg).err(),
            Some(KernelError::IrqConflict { line: 4 })
        );
    }

    #[test]
    fn construction_rejects_timer_line_claim() {
        let kcfg = KernelConfig::new(vec![
            DomainSpec::new(Box::new(IdleProgram)).with_irq_lines(vec![TIMER_LINE])
        ]);
        assert_eq!(
            System::new(MachineConfig::single_core(), kcfg).err(),
            Some(KernelError::TimerLineReserved)
        );
    }

    #[test]
    fn colouring_gives_domains_disjoint_colours() {
        let sys = two_idle(TimeProtConfig::full());
        let a = &sys.kernel.colour_assignment[0];
        let b = &sys.kernel.colour_assignment[1];
        assert!(!a.is_empty() && !b.is_empty());
        for c in a {
            assert!(!b.contains(c), "colour {c:?} shared between domains");
            assert!(
                !sys.kernel.kernel_colours.contains(c),
                "domain colour in kernel set"
            );
        }
    }

    #[test]
    fn no_colouring_shares_the_full_palette() {
        let sys = two_idle(TimeProtConfig::off());
        assert_eq!(
            sys.kernel.colour_assignment[0],
            sys.kernel.colour_assignment[1]
        );
    }

    #[test]
    fn kernel_clone_gives_private_images() {
        let sys = two_idle(TimeProtConfig::full());
        assert_eq!(sys.kernel.images.len(), 3, "shared + 2 clones");
        let d0 = &sys.kernel.domains[0];
        let d1 = &sys.kernel.domains[1];
        assert_ne!(d0.kimage, d1.kimage);
        assert_ne!(d0.kimage, 0);
        // Image frames live in the owning domain's colours.
        let llc_colours = sys.hw.config().llc.unwrap().colours() as u64;
        for f in sys.kernel.images[d0.kimage].frames() {
            let colour = Colour((f % llc_colours) as u16);
            assert!(
                d0.colours.contains(&colour),
                "clone frame {f} outside domain colours"
            );
        }
    }

    #[test]
    fn no_clone_shares_image_zero() {
        let sys = two_idle(TimeProtConfig::off());
        assert_eq!(sys.kernel.images.len(), 1);
        assert!(sys.kernel.domains.iter().all(|d| d.kimage == 0));
    }

    /// The template fast path must be indistinguishable from full
    /// construction: identical machine digests at birth, identical
    /// behaviour (digests, observations, switch log) after running.
    #[test]
    fn template_instantiation_matches_fresh_construction() {
        let trace = |n: u64| {
            TraceProgram::new(
                (0..n)
                    .map(|i| Instr::Store(data_addr((i * 64) % (4 * 4096))))
                    .chain(std::iter::once(Instr::Halt))
                    .collect(),
            )
        };
        let kcfg = |hi: TraceProgram| {
            KernelConfig::new(vec![
                DomainSpec::new(Box::new(hi))
                    .with_slice(Cycles(2_000))
                    .with_pad(Cycles(8_000)),
                DomainSpec::new(Box::new(IdleProgram))
                    .with_slice(Cycles(2_000))
                    .with_pad(Cycles(8_000)),
            ])
            .with_tp(TimeProtConfig::full())
        };

        let template = SystemTemplate::new(MachineConfig::single_core(), kcfg(trace(0))).unwrap();
        for n in [0, 17, 160] {
            let mut fresh = System::new(MachineConfig::single_core(), kcfg(trace(n))).unwrap();
            let mut cheap = template.instantiate_with_program(DomainId(0), Box::new(trace(n)));
            assert_eq!(
                fresh.hw.machine_digest(),
                cheap.hw.machine_digest(),
                "program {n}: digest must be unchanged by the reuse path"
            );
            fresh.run_cycles(Cycles(60_000), 40_000);
            cheap.run_cycles(Cycles(60_000), 40_000);
            assert_eq!(fresh.hw.machine_digest(), cheap.hw.machine_digest());
            assert_eq!(fresh.now(), cheap.now(), "program {n}: clocks diverged");
            for d in [DomainId(0), DomainId(1)] {
                assert_eq!(fresh.observation(d), cheap.observation(d), "program {n}");
            }
            assert_eq!(fresh.kernel.switch_log.len(), cheap.kernel.switch_log.len());
        }
    }

    #[test]
    fn round_robin_switching() {
        let mut sys = two_idle(TimeProtConfig::full());
        let mut seen = Vec::new();
        for _ in 0..200_000 {
            if let StepEvent::Switched { from, to, .. } = sys.step() {
                seen.push((from.0, to.0));
                if seen.len() == 4 {
                    break;
                }
            }
        }
        assert_eq!(seen, vec![(0, 1), (1, 0), (0, 1), (1, 0)]);
    }

    #[test]
    fn padded_switch_completes_exactly_at_target() {
        let mut sys = two_idle(TimeProtConfig::full());
        for _ in 0..400_000 {
            sys.step();
            if sys.kernel.switch_log.len() >= 3 {
                break;
            }
        }
        assert!(sys.kernel.switch_log.len() >= 3);
        for r in &sys.kernel.switch_log {
            assert!(r.padded);
            assert_eq!(r.overrun, None, "pad budget must suffice: {r:?}");
            assert_eq!(
                r.completed_at, r.target,
                "switch must end exactly at target"
            );
            assert_eq!(r.target, r.slice_start + Cycles(2_000) + Cycles(8_000));
        }
    }

    #[test]
    fn unpadded_switch_finishes_early_and_varies() {
        let mut sys = two_idle(TimeProtConfig::off());
        for _ in 0..400_000 {
            sys.step();
            if sys.kernel.switch_log.len() >= 3 {
                break;
            }
        }
        for r in &sys.kernel.switch_log {
            assert!(!r.padded);
            assert!(
                r.completed_at.0 < r.target.0,
                "no padding: completes before target"
            );
        }
    }

    #[test]
    fn pad_overrun_is_detected() {
        // A pad of 1 cycle cannot absorb the switch path: obligation T
        // must fail loudly, not silently.
        let kcfg = KernelConfig::new(vec![
            DomainSpec::new(Box::new(IdleProgram))
                .with_slice(Cycles(2_000))
                .with_pad(Cycles(1)),
            DomainSpec::new(Box::new(IdleProgram))
                .with_slice(Cycles(2_000))
                .with_pad(Cycles(1)),
        ]);
        let mut sys = System::new(MachineConfig::single_core(), kcfg).unwrap();
        for _ in 0..100_000 {
            sys.step();
            if !sys.kernel.switch_log.is_empty() {
                break;
            }
        }
        assert!(sys.kernel.pad_overruns > 0);
        assert!(sys.kernel.switch_log[0].overrun.is_some());
    }

    #[test]
    fn flush_on_switch_resets_core_state() {
        let mut sys = two_idle(TimeProtConfig::full());
        // Run domain 0 for a while, then step through the first switch.
        while sys.kernel.switch_log.is_empty() {
            sys.step();
        }
        // Immediately after a switch the L1s hold only post-flush kernel
        // lines; in particular no line owned by domain 0 remains.
        let c = &sys.hw.cores[0];
        let d0 = DomainTag(0);
        let leaked = c
            .l1d
            .iter_lines()
            .chain(c.l1i.iter_lines())
            .filter(|(_, _, l)| l.valid && l.owner == Some(d0))
            .count();
        assert_eq!(leaked, 0, "domain 0 lines must be flushed at the switch");
    }

    #[test]
    fn without_flush_state_survives_switch() {
        let prog = TraceProgram::loads((0..32).map(|i| data_addr(i * 64).0));
        let kcfg = KernelConfig::new(vec![
            DomainSpec::new(Box::new(prog)).with_slice(Cycles(50_000)),
            DomainSpec::new(Box::new(IdleProgram)).with_slice(Cycles(2_000)),
        ])
        .with_tp(TimeProtConfig::off());
        let mut sys = System::new(MachineConfig::single_core(), kcfg).unwrap();
        while sys.kernel.switch_log.is_empty() {
            sys.step();
        }
        let c = &sys.hw.cores[0];
        let survivors = c
            .l1d
            .iter_lines()
            .filter(|(_, _, l)| l.valid && l.owner == Some(DomainTag(0)))
            .count();
        assert!(
            survivors > 0,
            "no flush: domain 0 residue remains (the channel)"
        );
    }

    #[test]
    fn user_programs_execute_and_observe_clock() {
        let prog = TraceProgram::new(vec![
            Instr::ReadClock,
            Instr::Compute(10),
            Instr::ReadClock,
            Instr::Halt,
        ]);
        let kcfg = KernelConfig::new(vec![DomainSpec::new(Box::new(prog))]);
        let mut sys = System::new(MachineConfig::single_core(), kcfg).unwrap();
        sys.run_steps(10);
        let clocks = sys.observation(DomainId(0)).clocks();
        assert_eq!(clocks.len(), 2);
        assert!(clocks[1].0 >= clocks[0].0 + 10);
        assert!(sys.all_halted());
    }

    #[test]
    fn loads_and_stores_hit_domain_memory() {
        let prog = TraceProgram::new(vec![
            Instr::Load(data_addr(0)),
            Instr::Store(data_addr(64)),
            Instr::Halt,
        ]);
        let kcfg = KernelConfig::new(vec![DomainSpec::new(Box::new(prog))]);
        let mut sys = System::new(MachineConfig::single_core(), kcfg).unwrap();
        sys.run_steps(5);
        assert_eq!(sys.kernel.domains[0].retired, 2);
        assert!(sys
            .observation(DomainId(0))
            .events
            .contains(&ObsEvent::Halted));
    }

    #[test]
    fn out_of_window_access_faults_but_execution_continues() {
        let prog = TraceProgram::new(vec![
            Instr::Load(VAddr(0x9999_0000)),
            Instr::Compute(1),
            Instr::Halt,
        ]);
        let kcfg = KernelConfig::new(vec![DomainSpec::new(Box::new(prog))]);
        let mut sys = System::new(MachineConfig::single_core(), kcfg).unwrap();
        let events = sys.run_steps(5);
        assert!(events.contains(&StepEvent::Fault {
            domain: DomainId(0)
        }));
        assert!(sys
            .observation(DomainId(0))
            .events
            .contains(&ObsEvent::Fault));
        assert!(
            sys.all_halted(),
            "program continues past the fault and halts"
        );
    }

    #[test]
    fn ipc_roundtrip_same_slice_structure() {
        let sender = TraceProgram::new(vec![
            Instr::Syscall(SyscallReq::Send { ep: 0, msg: 99 }),
            Instr::Halt,
        ]);
        let receiver = TraceProgram::new(vec![
            Instr::Syscall(SyscallReq::Recv { ep: 0 }),
            Instr::Halt,
        ]);
        let kcfg = KernelConfig::new(vec![
            DomainSpec::new(Box::new(sender)).with_slice(Cycles(5_000)),
            DomainSpec::new(Box::new(receiver)).with_slice(Cycles(5_000)),
        ])
        .with_endpoints(vec![EndpointSpec::default()]);
        let mut sys = System::new(MachineConfig::single_core(), kcfg).unwrap();
        sys.run_cycles(Cycles(100_000), 1_000_000);
        let recvs = sys.observation(DomainId(1)).ipc_recvs();
        assert_eq!(recvs.len(), 1);
        assert_eq!(recvs[0].0, 99);
    }

    #[test]
    fn queued_messages_deliver_in_fifo_order_across_slices() {
        let sender = TraceProgram::new(vec![
            Instr::Syscall(SyscallReq::Send { ep: 0, msg: 1 }),
            Instr::Syscall(SyscallReq::Send { ep: 0, msg: 2 }),
            Instr::Syscall(SyscallReq::Send { ep: 0, msg: 3 }),
            Instr::Halt,
        ]);
        let receiver = TraceProgram::new(vec![
            Instr::Syscall(SyscallReq::Recv { ep: 0 }),
            Instr::Syscall(SyscallReq::Recv { ep: 0 }),
            Instr::Syscall(SyscallReq::Recv { ep: 0 }),
            Instr::Halt,
        ]);
        let kcfg = KernelConfig::new(vec![
            DomainSpec::new(Box::new(sender)).with_slice(Cycles(10_000)),
            DomainSpec::new(Box::new(receiver)).with_slice(Cycles(10_000)),
        ])
        .with_endpoints(vec![EndpointSpec::default()]);
        let mut sys = System::new(MachineConfig::single_core(), kcfg).unwrap();
        sys.run_cycles(Cycles(400_000), 400_000);
        let msgs: Vec<u64> = sys
            .observation(DomainId(1))
            .ipc_recvs()
            .iter()
            .map(|(m, _)| *m)
            .collect();
        assert_eq!(msgs, vec![1, 2, 3]);
    }

    #[test]
    fn recv_blocks_until_sender_runs() {
        // Receiver is first in the schedule: it must block through its
        // own slice and receive only after the sender's slice.
        let receiver = TraceProgram::new(vec![
            Instr::Syscall(SyscallReq::Recv { ep: 0 }),
            Instr::Halt,
        ]);
        let sender = TraceProgram::new(vec![
            Instr::Syscall(SyscallReq::Send { ep: 0, msg: 77 }),
            Instr::Halt,
        ]);
        let kcfg = KernelConfig::new(vec![
            DomainSpec::new(Box::new(receiver))
                .with_slice(Cycles(10_000))
                .with_pad(Cycles(20_000)),
            DomainSpec::new(Box::new(sender))
                .with_slice(Cycles(10_000))
                .with_pad(Cycles(20_000)),
        ])
        .with_endpoints(vec![EndpointSpec::default()]);
        let mut sys = System::new(MachineConfig::single_core(), kcfg).unwrap();
        sys.run_cycles(Cycles(400_000), 400_000);
        let recvs = sys.observation(DomainId(0)).ipc_recvs();
        assert_eq!(recvs.len(), 1);
        assert_eq!(recvs[0].0, 77);
        // Delivery happens in the receiver's second slice, i.e. after
        // the first full rotation (2 × (slice + pad) = 60_000).
        assert!(recvs[0].1 .0 >= 60_000, "delivered at {:?}", recvs[0].1);
    }

    #[test]
    fn send_to_invalid_endpoint_is_harmless() {
        let prog = TraceProgram::new(vec![
            Instr::Syscall(SyscallReq::Send { ep: 99, msg: 1 }),
            Instr::Syscall(SyscallReq::Recv { ep: 99 }),
            Instr::Compute(1),
            Instr::Halt,
        ]);
        let kcfg = KernelConfig::new(vec![DomainSpec::new(Box::new(prog))]);
        let mut sys = System::new(MachineConfig::single_core(), kcfg).unwrap();
        sys.run_steps(10);
        assert!(
            sys.all_halted(),
            "bad endpoint indices must not wedge the domain"
        );
    }

    #[test]
    fn io_submit_respects_irq_partitioning() {
        let prog = TraceProgram::new(vec![
            Instr::Syscall(SyscallReq::IoSubmit { line: 7, delay: 10 }),
            Instr::Halt,
        ]);
        // Domain 0 does not own line 7 (domain 1 does).
        let kcfg = KernelConfig::new(vec![
            DomainSpec::new(Box::new(prog.clone())),
            DomainSpec::new(Box::new(IdleProgram)).with_irq_lines(vec![7]),
        ]);
        let mut sys = System::new(MachineConfig::single_core(), kcfg).unwrap();
        sys.run_steps(10);
        assert_eq!(
            sys.kernel.io_denied, 1,
            "partitioning denies foreign-line I/O"
        );

        // Without partitioning, the same call is allowed.
        let kcfg = KernelConfig::new(vec![
            DomainSpec::new(Box::new(prog)),
            DomainSpec::new(Box::new(IdleProgram)).with_irq_lines(vec![7]),
        ])
        .with_tp(TimeProtConfig::off());
        let mut sys = System::new(MachineConfig::single_core(), kcfg).unwrap();
        sys.run_steps(10);
        assert_eq!(sys.kernel.io_denied, 0);
    }

    #[test]
    fn masked_device_irq_waits_for_owner() {
        // Domain 0 arms its own line, halts; the IRQ fires while domain 1
        // runs — with partitioning it must be deferred to domain 0's
        // next slice.
        let prog = TraceProgram::new(vec![
            Instr::Syscall(SyscallReq::IoSubmit {
                line: 5,
                delay: 4_000,
            }),
            Instr::Halt,
        ]);
        let kcfg = KernelConfig::new(vec![
            DomainSpec::new(Box::new(prog))
                .with_irq_lines(vec![5])
                .with_slice(Cycles(2_000)),
            DomainSpec::new(Box::new(IdleProgram)).with_slice(Cycles(2_000)),
        ]);
        let mut sys = System::new(MachineConfig::single_core(), kcfg).unwrap();
        let mut irq_during: Option<DomainId> = None;
        for _ in 0..400_000 {
            let ev = sys.step();
            if let StepEvent::IrqHandled { line: 5 } = ev {
                irq_during = Some(sys.kernel.current);
                break;
            }
        }
        assert_eq!(
            irq_during,
            Some(DomainId(0)),
            "IRQ must be handled in the owner's slice"
        );
    }

    #[test]
    fn unpartitioned_irq_fires_during_victim() {
        // Sweep the device delay; without partitioning, some delay lands
        // the completion interrupt inside the *other* domain's slice —
        // the E5 channel. (The exact delay depends on kernel-path costs,
        // so we search rather than hardcode.)
        let mut hit_victim = false;
        for delay in (500..8_000).step_by(500) {
            let prog = TraceProgram::new(vec![
                Instr::Syscall(SyscallReq::IoSubmit { line: 5, delay }),
                Instr::Halt,
            ]);
            let kcfg = KernelConfig::new(vec![
                DomainSpec::new(Box::new(prog))
                    .with_irq_lines(vec![5])
                    .with_slice(Cycles(2_000)),
                DomainSpec::new(Box::new(IdleProgram)).with_slice(Cycles(2_000)),
            ])
            .with_tp(TimeProtConfig::off());
            let mut sys = System::new(MachineConfig::single_core(), kcfg).unwrap();
            for _ in 0..400_000 {
                let ev = sys.step();
                if let StepEvent::IrqHandled { line: 5 } = ev {
                    if sys.kernel.current == DomainId(1) {
                        hit_victim = true;
                    }
                    break;
                }
            }
            if hit_victim {
                break;
            }
        }
        assert!(
            hit_victim,
            "no partitioning: some delay lets the IRQ steal cycles from the victim (E5)"
        );
    }

    #[test]
    fn yield_switches_immediately_but_pads_to_full_deadline() {
        let prog = TraceProgram::new(vec![Instr::Syscall(SyscallReq::Yield), Instr::Halt]);
        let kcfg = KernelConfig::new(vec![
            DomainSpec::new(Box::new(prog))
                .with_slice(Cycles(10_000))
                .with_pad(Cycles(20_000)),
            DomainSpec::new(Box::new(IdleProgram)),
        ]);
        let mut sys = System::new(MachineConfig::single_core(), kcfg).unwrap();
        for _ in 0..1_000 {
            sys.step();
            if !sys.kernel.switch_log.is_empty() {
                break;
            }
        }
        let r = sys.kernel.switch_log[0];
        assert_eq!(r.reason, SwitchReason::Yield);
        // Even though the domain yielded after a handful of cycles, the
        // next domain starts at the *fixed* padded deadline: yield time
        // does not leak.
        assert_eq!(r.completed_at, Cycles(10_000) + Cycles(20_000));
    }

    #[test]
    fn map_page_then_access_succeeds() {
        let vpn = 0x3000;
        let prog = TraceProgram::new(vec![
            Instr::Syscall(SyscallReq::MapPage { vpn }),
            Instr::Store(VAddr(vpn << 12)),
            Instr::Load(VAddr(vpn << 12)),
            Instr::Halt,
        ]);
        let kcfg = KernelConfig::new(vec![DomainSpec::new(Box::new(prog))]);
        let mut sys = System::new(MachineConfig::single_core(), kcfg).unwrap();
        sys.run_steps(10);
        assert!(
            !sys.observation(DomainId(0))
                .events
                .contains(&ObsEvent::Fault),
            "mapped page must be accessible"
        );
        assert!(sys.all_halted());
    }

    #[test]
    fn unmap_invalidates_the_tlb() {
        // Access (TLB fill) → unmap → access again. Without the invlpg
        // in sys_unmap_page the stale TLB entry would let the second
        // access through — the §5.3 consistency bug.
        let vpn = 0x3000;
        let prog = TraceProgram::new(vec![
            Instr::Syscall(SyscallReq::MapPage { vpn }),
            Instr::Store(VAddr(vpn << 12)),
            Instr::Syscall(SyscallReq::UnmapPage { vpn }),
            Instr::Store(VAddr(vpn << 12)),
            Instr::Halt,
        ]);
        let kcfg = KernelConfig::new(vec![DomainSpec::new(Box::new(prog))]);
        let mut sys = System::new(MachineConfig::single_core(), kcfg).unwrap();
        sys.run_steps(12);
        assert!(
            sys.observation(DomainId(0))
                .events
                .contains(&ObsEvent::Fault),
            "access after unmap must fault, not hit a stale TLB entry"
        );
    }

    #[test]
    fn released_frames_stay_within_their_colour() {
        // Map and unmap under domain 0, then exhaust domain 1's pool:
        // domain 1 must never receive a frame of domain 0's colours.
        let churn = TraceProgram::new(
            (0..20u64)
                .flat_map(|i| {
                    [
                        Instr::Syscall(SyscallReq::MapPage { vpn: 0x3000 + i }),
                        Instr::Syscall(SyscallReq::UnmapPage { vpn: 0x3000 + i }),
                    ]
                })
                .collect(),
        );
        let grabber = TraceProgram::new(
            (0..200u64)
                .map(|i| Instr::Syscall(SyscallReq::MapPage { vpn: 0x5000 + i }))
                .collect(),
        );
        let kcfg = KernelConfig::new(vec![
            DomainSpec::new(Box::new(churn)),
            DomainSpec::new(Box::new(grabber)),
        ]);
        let mut sys = System::new(MachineConfig::single_core(), kcfg).unwrap();
        sys.run_cycles(Cycles(2_000_000), 1_000_000);
        let llc_colours = sys.hw.config().llc.unwrap().colours() as u64;
        for (pfn, info) in sys.hw.mem.iter() {
            if info.owner == Some(DomainTag(1)) {
                let colour = Colour((pfn % llc_colours) as u16);
                assert!(
                    sys.kernel.colour_assignment[1].contains(&colour),
                    "domain 1 got foreign-colour frame {pfn}"
                );
            }
        }
    }

    #[test]
    fn pad_filler_recovers_cycles_without_breaking_the_grid() {
        // A filler that loads its own data during padding.
        let filler = TraceProgram::loads((0..4096).map(|i| data_addr((i * 64) % (8 * 4096)).0));
        let kcfg = KernelConfig::new(vec![
            DomainSpec::new(Box::new(IdleProgram))
                .with_slice(Cycles(2_000))
                .with_pad(Cycles(20_000))
                .with_pad_filler(Box::new(filler), Cycles(12_000)),
            DomainSpec::new(Box::new(IdleProgram))
                .with_slice(Cycles(2_000))
                .with_pad(Cycles(20_000)),
        ]);
        let mut sys = System::new(MachineConfig::single_core(), kcfg).unwrap();
        for _ in 0..200_000 {
            sys.step();
            if sys.kernel.switch_log.len() >= 4 {
                break;
            }
        }
        assert!(
            sys.kernel.filler_cycles_recovered > 0,
            "filler must run during padding"
        );
        // The padded grid is untouched: every switch still ends exactly
        // at its target with no overrun.
        for r in &sys.kernel.switch_log {
            assert_eq!(r.overrun, None, "{r:?}");
            assert_eq!(r.completed_at, r.target);
        }
    }

    #[test]
    fn pad_filler_effects_are_flushed() {
        let filler = TraceProgram::loads((0..4096).map(|i| data_addr((i * 64) % (8 * 4096)).0));
        let kcfg = KernelConfig::new(vec![
            DomainSpec::new(Box::new(IdleProgram))
                .with_slice(Cycles(2_000))
                .with_pad(Cycles(20_000))
                .with_pad_filler(Box::new(filler), Cycles(12_000)),
            DomainSpec::new(Box::new(IdleProgram))
                .with_slice(Cycles(2_000))
                .with_pad(Cycles(20_000)),
        ]);
        let mut sys = System::new(MachineConfig::single_core(), kcfg).unwrap();
        while sys.kernel.switch_log.is_empty() {
            sys.step();
        }
        // Immediately after the switch: no filler residue in the L1s.
        let residue = sys.hw.cores[0]
            .l1d
            .iter_lines()
            .filter(|(_, _, l)| l.valid && l.owner == Some(DomainTag(0)))
            .count();
        assert_eq!(
            residue, 0,
            "filler lines must be flushed before the next domain"
        );
    }

    #[test]
    fn inadequate_filler_margin_is_detected_as_overrun() {
        // Margin 0: the filler runs right up to the target; the flush
        // then necessarily overshoots — obligation T must catch this
        // misconfiguration rather than silently leak.
        let filler = TraceProgram::loads((0..65536).map(|i| data_addr((i * 64) % (8 * 4096)).0));
        let kcfg = KernelConfig::new(vec![
            DomainSpec::new(Box::new(IdleProgram))
                .with_slice(Cycles(2_000))
                .with_pad(Cycles(20_000))
                .with_pad_filler(Box::new(filler), Cycles(0)),
            DomainSpec::new(Box::new(IdleProgram))
                .with_slice(Cycles(2_000))
                .with_pad(Cycles(20_000)),
        ]);
        let mut sys = System::new(MachineConfig::single_core(), kcfg).unwrap();
        for _ in 0..200_000 {
            sys.step();
            if !sys.kernel.switch_log.is_empty() {
                break;
            }
        }
        assert!(
            sys.kernel.pad_overruns > 0,
            "margin 0 must overrun the pad target"
        );
    }

    #[test]
    fn system_clone_is_deep() {
        let mut a = two_idle(TimeProtConfig::full());
        let b = a.clone();
        a.run_steps(1000);
        assert_eq!(b.now(), Cycles::ZERO, "clone must not share clocks");
        assert_ne!(a.now(), b.now());
    }

    #[test]
    fn deterministic_replay() {
        let mk = || {
            let mut s = two_idle(TimeProtConfig::full());
            s.run_steps(5_000);
            (s.now(), s.hw.machine_digest(), s.kernel.switch_log.len())
        };
        assert_eq!(mk(), mk(), "the system must be fully deterministic");
    }
}
