//! The user-program model.
//!
//! Domains execute *programs*: deterministic state machines that emit one
//! [`Instr`] at a time and receive [`StepFeedback`] about the previous
//! instruction (clock reads, IPC deliveries, faults). This is the
//! simulator's analogue of user-mode machine code. Determinism matters:
//! the noninterference checker re-runs systems from identical initial
//! states and compares observable traces, which is only meaningful if
//! programs have no hidden entropy.
//!
//! Attack programs (in `tp-attacks`) implement [`Program`] with internal
//! state machines; this module provides the trait, a script-style
//! [`TraceProgram`] for tests, and the spinning [`IdleProgram`].

use tp_hw::obs::{mix_digest, OBS_DIGEST_SEED};
use tp_hw::types::{Cycles, Fault, VAddr};

/// A system-call request issued by a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyscallReq {
    /// Send `msg` to endpoint `ep`; blocks until the message is accepted
    /// into the endpoint queue (immediate in this model).
    Send {
        /// Endpoint index.
        ep: usize,
        /// Payload word.
        msg: u64,
    },
    /// Receive from endpoint `ep`; blocks until a message is deliverable.
    Recv {
        /// Endpoint index.
        ep: usize,
    },
    /// Submit an I/O operation whose completion raises `line` after
    /// `delay` cycles — the Trojan's tool in the E5 interrupt channel.
    IoSubmit {
        /// Interrupt line to raise on completion.
        line: u8,
        /// Device latency in cycles.
        delay: u64,
    },
    /// Voluntarily end the domain's current slice.
    Yield,
    /// Enter and exit the kernel without further effect (a `seL4_Yield`
    /// -like null round trip; exercises the Case-2a kernel path).
    Null,
    /// Map a fresh writable page at virtual page `vpn`, backed by a
    /// frame from the calling domain's own colours. Silently a no-op if
    /// the page is already mapped or no coloured frame is available.
    MapPage {
        /// Virtual page number to map.
        vpn: u64,
    },
    /// Unmap the page at `vpn`, returning its frame to the domain's
    /// colour pool and invalidating the TLB entry (the §5.3 consistency
    /// obligation: a stale entry here would be both a correctness and a
    /// timing bug).
    UnmapPage {
        /// Virtual page number to unmap.
        vpn: u64,
    },
}

/// One modelled user-mode instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Load from a virtual address.
    Load(VAddr),
    /// Store to a virtual address.
    Store(VAddr),
    /// A conditional branch: resolved `taken`, jumping to `target`.
    Branch {
        /// Whether the branch is taken.
        taken: bool,
        /// Branch target (the new PC if taken).
        target: VAddr,
    },
    /// Pure computation costing `units` of architecturally fixed work.
    Compute(u64),
    /// Read the cycle counter; the value arrives in the next feedback.
    ReadClock,
    /// Trap into the kernel.
    Syscall(SyscallReq),
    /// Stop executing; the domain idles for its remaining slices.
    Halt,
}

/// Fold one instruction into a rolling FNV-1a state. Each [`Instr`] arm
/// (and each [`SyscallReq`] arm below it) starts with a distinct tag
/// byte, so structurally different instructions carrying the same
/// payload words cannot collide — the same discipline
/// [`tp_hw::obs::fold_obs_event`] applies to observation events. This
/// is the leaf of the proof cache's content hash: two programs with
/// equal folds replay identically.
pub fn fold_instr(h: u64, i: &Instr) -> u64 {
    match i {
        Instr::Load(a) => mix_digest(mix_digest(h, 1), a.0),
        Instr::Store(a) => mix_digest(mix_digest(h, 2), a.0),
        Instr::Branch { taken, target } => {
            mix_digest(mix_digest(mix_digest(h, 3), *taken as u64), target.0)
        }
        Instr::Compute(u) => mix_digest(mix_digest(h, 4), *u),
        Instr::ReadClock => mix_digest(h, 5),
        Instr::Syscall(req) => {
            let h = mix_digest(h, 6);
            match req {
                SyscallReq::Send { ep, msg } => {
                    mix_digest(mix_digest(mix_digest(h, 1), *ep as u64), *msg)
                }
                SyscallReq::Recv { ep } => mix_digest(mix_digest(h, 2), *ep as u64),
                SyscallReq::IoSubmit { line, delay } => {
                    mix_digest(mix_digest(mix_digest(h, 3), *line as u64), *delay)
                }
                SyscallReq::Yield => mix_digest(h, 4),
                SyscallReq::Null => mix_digest(h, 5),
                SyscallReq::MapPage { vpn } => mix_digest(mix_digest(h, 6), *vpn),
                SyscallReq::UnmapPage { vpn } => mix_digest(mix_digest(h, 7), *vpn),
            }
        }
        Instr::Halt => mix_digest(h, 7),
    }
}

/// An IPC message delivered to a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IpcDelivery {
    /// Payload word.
    pub msg: u64,
    /// The receiver's clock at delivery.
    pub at: Cycles,
}

/// Feedback about the previously executed instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StepFeedback {
    /// Clock value if the previous instruction was [`Instr::ReadClock`].
    pub clock: Option<Cycles>,
    /// Message if a pending `Recv` completed.
    pub ipc: Option<IpcDelivery>,
    /// Fault raised by the previous instruction, if any. The kernel
    /// delivers the fault instead of crashing the domain, so attack
    /// programs can probe address-space boundaries.
    pub fault: Option<Fault>,
}

/// A deterministic user program.
///
/// Implementors must be deterministic: the same sequence of feedback
/// values must produce the same sequence of instructions. All interesting
/// behaviour (secret-dependent access patterns, probe loops) lives in
/// implementations of this trait.
///
/// `Send + Sync` are supertraits so that kernel configurations and whole
/// systems can move onto the persistent scheduler's worker pool
/// (`tp-sched`) and templates can be shared between workers; programs
/// are plain data, so every implementor satisfies them for free.
pub trait Program: ProgramClone + core::fmt::Debug + Send + Sync {
    /// Produce the next instruction given feedback about the last one.
    fn next(&mut self, feedback: &StepFeedback) -> Instr;

    /// A content hash of the program's *complete* behaviour-determining
    /// state, or `None` if the program cannot promise one.
    ///
    /// The contract is strict: two programs returning the same
    /// `Some(fp)` must emit identical instruction sequences under
    /// identical feedback. Any program that cannot guarantee this must
    /// return `None` (the default), which makes every proof cell built
    /// on it *uncacheable* — the proof cache falls back to a live
    /// re-prove rather than trusting an under-specified fingerprint.
    fn content_fingerprint(&self) -> Option<u64> {
        None
    }
}

/// Object-safe clone support for `Box<dyn Program>`.
///
/// The noninterference checker clones whole systems to replay them with
/// different secrets, so programs must be cloneable through the trait
/// object. Implemented automatically for every `Clone` program.
pub trait ProgramClone {
    /// Clone into a fresh box.
    fn clone_box(&self) -> Box<dyn Program>;
}

impl<T> ProgramClone for T
where
    T: 'static + Program + Clone,
{
    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
}

impl Clone for Box<dyn Program> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// A program that replays a fixed instruction list, then halts.
///
/// The workhorse of unit tests and simple workloads.
#[derive(Debug, Clone, Default)]
pub struct TraceProgram {
    instrs: Vec<Instr>,
    pos: usize,
    /// Clock values observed via `ReadClock`, in order (for assertions).
    pub observed_clocks: Vec<Cycles>,
}

impl TraceProgram {
    /// Create from an instruction list.
    pub fn new(instrs: Vec<Instr>) -> Self {
        TraceProgram {
            instrs,
            pos: 0,
            observed_clocks: Vec::new(),
        }
    }

    /// Convenience: a program touching each address in `addrs` once.
    pub fn loads(addrs: impl IntoIterator<Item = u64>) -> Self {
        TraceProgram::new(addrs.into_iter().map(|a| Instr::Load(VAddr(a))).collect())
    }
}

impl Program for TraceProgram {
    fn next(&mut self, feedback: &StepFeedback) -> Instr {
        if let Some(c) = feedback.clock {
            self.observed_clocks.push(c);
        }
        let i = self.instrs.get(self.pos).copied().unwrap_or(Instr::Halt);
        self.pos += 1;
        i
    }

    /// The replay position and every remaining-or-replayed instruction
    /// fully determine a trace program's output (`observed_clocks` is
    /// write-only bookkeeping), so the fold over (pos, len, instrs) is a
    /// complete fingerprint.
    fn content_fingerprint(&self) -> Option<u64> {
        let h = mix_digest(
            mix_digest(OBS_DIGEST_SEED, self.pos as u64),
            self.instrs.len() as u64,
        );
        Some(self.instrs.iter().fold(h, fold_instr))
    }
}

/// A program that computes forever (1 unit per step). Used to fill
/// domains whose activity is irrelevant to an experiment.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdleProgram;

impl Program for IdleProgram {
    fn next(&mut self, _feedback: &StepFeedback) -> Instr {
        Instr::Compute(1)
    }

    /// Stateless: every idle program behaves identically.
    fn content_fingerprint(&self) -> Option<u64> {
        Some(mix_digest(OBS_DIGEST_SEED, 0x1d1e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_program_replays_then_halts() {
        let mut p = TraceProgram::new(vec![Instr::Compute(1), Instr::ReadClock]);
        let fb = StepFeedback::default();
        assert_eq!(p.next(&fb), Instr::Compute(1));
        assert_eq!(p.next(&fb), Instr::ReadClock);
        assert_eq!(p.next(&fb), Instr::Halt);
        assert_eq!(p.next(&fb), Instr::Halt);
    }

    #[test]
    fn trace_program_records_clock_feedback() {
        let mut p = TraceProgram::new(vec![Instr::ReadClock, Instr::ReadClock]);
        p.next(&StepFeedback::default());
        p.next(&StepFeedback {
            clock: Some(Cycles(55)),
            ..Default::default()
        });
        p.next(&StepFeedback {
            clock: Some(Cycles(99)),
            ..Default::default()
        });
        assert_eq!(p.observed_clocks, vec![Cycles(55), Cycles(99)]);
    }

    #[test]
    fn boxed_programs_clone() {
        let p: Box<dyn Program> = Box::new(TraceProgram::loads([0x1000, 0x2000]));
        let mut q = p.clone();
        assert_eq!(q.next(&StepFeedback::default()), Instr::Load(VAddr(0x1000)));
    }

    #[test]
    fn idle_spins() {
        let mut p = IdleProgram;
        for _ in 0..3 {
            assert_eq!(p.next(&StepFeedback::default()), Instr::Compute(1));
        }
    }

    #[test]
    fn content_fingerprints_separate_programs() {
        use tp_hw::types::VAddr;
        let fp = |instrs: Vec<Instr>| TraceProgram::new(instrs).content_fingerprint().unwrap();
        // Same payload word under different arms must not collide.
        assert_ne!(
            fp(vec![Instr::Load(VAddr(64))]),
            fp(vec![Instr::Store(VAddr(64))])
        );
        assert_ne!(
            fp(vec![Instr::Compute(64)]),
            fp(vec![Instr::Load(VAddr(64))])
        );
        assert_ne!(
            fp(vec![Instr::Syscall(SyscallReq::MapPage { vpn: 3 })]),
            fp(vec![Instr::Syscall(SyscallReq::UnmapPage { vpn: 3 })])
        );
        assert_ne!(fp(vec![]), fp(vec![Instr::Halt]));
        // Equal programs fingerprint equally; clones too.
        let p = TraceProgram::loads([0x1000, 0x2000]);
        assert_eq!(p.content_fingerprint(), p.clone().content_fingerprint());
        // Advancing the replay position changes the fingerprint.
        let mut q = p.clone();
        q.next(&StepFeedback::default());
        assert_ne!(p.content_fingerprint(), q.content_fingerprint());
        // Observed clocks are bookkeeping, not behaviour.
        let mut r = TraceProgram::new(vec![Instr::ReadClock]);
        let mut s = r.clone();
        r.next(&StepFeedback::default());
        s.next(&StepFeedback {
            clock: Some(Cycles(7)),
            ..Default::default()
        });
        assert_eq!(r.content_fingerprint(), s.content_fingerprint());
        assert!(IdleProgram.content_fingerprint().is_some());
    }
}
