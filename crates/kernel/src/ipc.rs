//! Synchronous IPC endpoints with optional deterministic delivery.
//!
//! §3.2: timing of Hi-observable events — e.g. a crypto *downgrader*
//! handing ciphertext to a network stack (Figure 1) — is a channel if
//! message-passing times depend on secrets. The defence the paper adopts
//! from Cock et al. (2014): "a synchronous IPC channel switches to the
//! receiver only once the sender domain has executed for a pre-determined
//! minimum amount of time", chosen by the system designer to cover the
//! sender's WCET.
//!
//! [`Endpoint`] realises both behaviours. Without a minimum time, a
//! message is deliverable at its send time (the leaky fast path). With
//! `min_delivery`, a message becomes deliverable no earlier than the
//! sender's slice start plus the threshold — the send instant is erased.

use std::collections::VecDeque;

use crate::domain::DomainId;
use tp_hw::types::Cycles;

/// A queued message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedMsg {
    /// Payload word.
    pub msg: u64,
    /// Earliest clock value at which delivery may occur.
    pub ready_at: Cycles,
    /// Sending domain (for bookkeeping/diagnostics only — the receiver's
    /// observation never includes this).
    pub sender: DomainId,
}

/// Configuration of one endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EndpointSpec {
    /// Cock-et-al. minimum delivery time, measured from the *sender's
    /// slice start*. `None` = deliver at send time (leaky).
    pub min_delivery: Option<Cycles>,
}

/// A synchronous endpoint: a bounded-order message queue plus a record of
/// which domain is blocked receiving on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Endpoint {
    spec: EndpointSpec,
    queue: VecDeque<QueuedMsg>,
    /// Domain currently blocked in `Recv` on this endpoint, if any.
    waiting: Option<DomainId>,
}

impl Endpoint {
    /// An endpoint with the given spec.
    pub fn new(spec: EndpointSpec) -> Self {
        Endpoint {
            spec,
            queue: VecDeque::new(),
            waiting: None,
        }
    }

    /// The endpoint's spec.
    pub fn spec(&self) -> EndpointSpec {
        self.spec
    }

    /// Enqueue a message sent at `now` by a sender whose current slice
    /// started at `sender_slice_start`. Returns the computed
    /// `ready_at` (the deterministic-delivery mechanism, §3.2).
    pub fn send(
        &mut self,
        msg: u64,
        sender: DomainId,
        now: Cycles,
        sender_slice_start: Cycles,
    ) -> Cycles {
        let ready_at = match self.spec.min_delivery {
            // The deterministic time: slice start + threshold, regardless
            // of when inside the slice the send happened. If the sender
            // overran the threshold, delivery degrades to the send time
            // (and the proof harness flags the threshold as unsafe).
            Some(min) => {
                let t = sender_slice_start + min;
                if t.0 >= now.0 {
                    t
                } else {
                    now
                }
            }
            None => now,
        };
        self.queue.push_back(QueuedMsg {
            msg,
            ready_at,
            sender,
        });
        ready_at
    }

    /// Enqueue a message with an explicitly computed `ready_at`. The
    /// kernel uses this so that the [`crate::config::TimeProtConfig::
    /// deterministic_ipc`] switch can decide whether the endpoint's
    /// threshold is enforced.
    pub fn send_at(&mut self, msg: u64, sender: DomainId, ready_at: Cycles) {
        self.queue.push_back(QueuedMsg {
            msg,
            ready_at,
            sender,
        });
    }

    /// A message whose `ready_at` has passed, if any (FIFO order).
    pub fn deliverable(&self, now: Cycles) -> Option<QueuedMsg> {
        self.queue
            .front()
            .copied()
            .filter(|m| m.ready_at.0 <= now.0)
    }

    /// Remove and return the front message if deliverable.
    pub fn take_deliverable(&mut self, now: Cycles) -> Option<QueuedMsg> {
        if self.deliverable(now).is_some() {
            self.queue.pop_front()
        } else {
            None
        }
    }

    /// When the front message becomes deliverable (for idle-until logic).
    pub fn next_ready_at(&self) -> Option<Cycles> {
        self.queue.front().map(|m| m.ready_at)
    }

    /// Record `d` as blocked receiving here.
    pub fn set_waiting(&mut self, d: DomainId) {
        self.waiting = Some(d);
    }

    /// Clear and return the blocked receiver.
    pub fn take_waiting(&mut self) -> Option<DomainId> {
        self.waiting.take()
    }

    /// The blocked receiver, if any.
    pub fn waiting(&self) -> Option<DomainId> {
        self.waiting
    }

    /// Queue depth (diagnostics).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D0: DomainId = DomainId(0);

    #[test]
    fn fast_path_delivers_at_send_time() {
        let mut ep = Endpoint::new(EndpointSpec { min_delivery: None });
        let r = ep.send(42, D0, Cycles(500), Cycles(100));
        assert_eq!(r, Cycles(500), "leaky: ready at send time");
        assert_eq!(ep.deliverable(Cycles(499)), None);
        assert_eq!(ep.deliverable(Cycles(500)).unwrap().msg, 42);
    }

    #[test]
    fn deterministic_delivery_erases_send_time() {
        let spec = EndpointSpec {
            min_delivery: Some(Cycles(1000)),
        };
        // Two sends at very different instants within the slice...
        let mut early = Endpoint::new(spec);
        let mut late = Endpoint::new(spec);
        let r1 = early.send(1, D0, Cycles(150), Cycles(100));
        let r2 = late.send(1, D0, Cycles(1050), Cycles(100));
        // ...become deliverable at the same deterministic instant.
        assert_eq!(r1, Cycles(1100));
        assert_eq!(r2, Cycles(1100));
    }

    #[test]
    fn threshold_overrun_degrades_to_send_time() {
        let spec = EndpointSpec {
            min_delivery: Some(Cycles(10)),
        };
        let mut ep = Endpoint::new(spec);
        let r = ep.send(1, D0, Cycles(5000), Cycles(100));
        assert_eq!(r, Cycles(5000), "unsafe threshold: send time leaks again");
    }

    #[test]
    fn fifo_order_and_take() {
        let mut ep = Endpoint::new(EndpointSpec::default());
        ep.send(1, D0, Cycles(10), Cycles(0));
        ep.send(2, D0, Cycles(20), Cycles(0));
        assert_eq!(ep.queue_len(), 2);
        assert_eq!(ep.take_deliverable(Cycles(15)).unwrap().msg, 1);
        assert_eq!(
            ep.take_deliverable(Cycles(15)),
            None,
            "second not ready yet"
        );
        assert_eq!(ep.take_deliverable(Cycles(25)).unwrap().msg, 2);
    }

    #[test]
    fn waiting_receiver_bookkeeping() {
        let mut ep = Endpoint::new(EndpointSpec::default());
        assert_eq!(ep.waiting(), None);
        ep.set_waiting(DomainId(3));
        assert_eq!(ep.waiting(), Some(DomainId(3)));
        assert_eq!(ep.take_waiting(), Some(DomainId(3)));
        assert_eq!(ep.take_waiting(), None);
    }

    #[test]
    fn next_ready_at_reports_front() {
        let mut ep = Endpoint::new(EndpointSpec {
            min_delivery: Some(Cycles(100)),
        });
        assert_eq!(ep.next_ready_at(), None);
        ep.send(9, D0, Cycles(10), Cycles(0));
        assert_eq!(ep.next_ready_at(), Some(Cycles(100)));
    }
}
