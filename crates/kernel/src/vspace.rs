//! Virtual address spaces with modelled two-level page tables.
//!
//! The page tables are *themselves* stored in modelled physical frames,
//! allocated from the owning domain's colours. This matters: the hardware
//! page-table walker's memory traffic goes through the cache hierarchy,
//! so page tables in uncoloured memory would be a shared resource and
//! hence a channel. Putting them in domain-coloured frames closes it —
//! one of the details the §5.2 Case-1 argument quietly relies on
//! ("all such memory accesses must lie within the physical memory of the
//! current domain").

use std::collections::BTreeMap;

use tp_hw::machine::{AddressSpace, Translation, WalkFootprint};
use tp_hw::types::{Asid, PAddr, VAddr};

/// Number of entries per page-table level (512, as for 4 KiB pages with
/// 8-byte entries).
const ENTRIES_PER_TABLE: u64 = 512;

/// A mapped page's attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mapping {
    /// Physical frame.
    pub pfn: u64,
    /// Store permission.
    pub writable: bool,
    /// Global (ASID-wildcard) mapping — only the *shared* kernel image
    /// uses these; they are what makes the unclonned kernel leak (§4.2).
    pub global: bool,
}

/// Errors from mapping operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapError {
    /// The virtual page is already mapped.
    AlreadyMapped {
        /// The virtual page number.
        vpn: u64,
    },
    /// The virtual page was not mapped.
    NotMapped {
        /// The virtual page number.
        vpn: u64,
    },
    /// No frame available for a new leaf page table.
    NoTableFrame,
}

/// A two-level page table rooted in a modelled frame.
///
/// The root table frame and leaf table frames are real modelled frames
/// (allocated by the kernel from the domain's colours); the walker
/// footprint of a translation is the physical addresses of the entries
/// the hardware would read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VSpace {
    /// ASID this space is installed under.
    pub asid: Asid,
    /// Frame holding the root table.
    root_frame: u64,
    /// Leaf tables: index of root entry → frame holding the leaf table.
    leaves: BTreeMap<u64, u64>,
    /// The actual mappings: vpn → mapping.
    map: BTreeMap<u64, Mapping>,
}

impl VSpace {
    /// Create an empty space rooted at `root_frame`.
    pub fn new(asid: Asid, root_frame: u64) -> Self {
        VSpace {
            asid,
            root_frame,
            leaves: BTreeMap::new(),
            map: BTreeMap::new(),
        }
    }

    /// The root-table frame (for invariant checks).
    pub fn root_frame(&self) -> u64 {
        self.root_frame
    }

    /// Frames used as leaf tables.
    pub fn leaf_frames(&self) -> impl Iterator<Item = u64> + '_ {
        self.leaves.values().copied()
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.map.len()
    }

    /// Whether a leaf table already exists to cover `vpn`.
    pub fn has_leaf_for(&self, vpn: u64) -> bool {
        self.leaves.contains_key(&(vpn / ENTRIES_PER_TABLE))
    }

    /// Map `vpn` to `mapping`. If no leaf table covers `vpn`, one is
    /// created in the frame supplied by `table_frame` (the kernel passes
    /// a freshly coloured frame, or `None` if allocation failed).
    pub fn map(
        &mut self,
        vpn: u64,
        mapping: Mapping,
        table_frame: Option<u64>,
    ) -> Result<(), MapError> {
        if self.map.contains_key(&vpn) {
            return Err(MapError::AlreadyMapped { vpn });
        }
        let li = vpn / ENTRIES_PER_TABLE;
        if let std::collections::btree_map::Entry::Vacant(e) = self.leaves.entry(li) {
            let f = table_frame.ok_or(MapError::NoTableFrame)?;
            e.insert(f);
        }
        self.map.insert(vpn, mapping);
        Ok(())
    }

    /// Remove the mapping for `vpn`, returning it. The caller must also
    /// invalidate the TLB entry (`Machine::cores[..].tlb.invalidate_page`)
    /// to preserve TLB consistency — the kernel does this in
    /// `Kernel::unmap_page`.
    pub fn unmap(&mut self, vpn: u64) -> Result<Mapping, MapError> {
        self.map.remove(&vpn).ok_or(MapError::NotMapped { vpn })
    }

    /// Look up a mapping without hardware effects.
    pub fn mapping(&self, vpn: u64) -> Option<Mapping> {
        self.map.get(&vpn).copied()
    }

    /// Iterate over `(vpn, mapping)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Mapping)> + '_ {
        self.map.iter().map(|(v, m)| (*v, *m))
    }
}

impl AddressSpace for VSpace {
    fn translate(&self, vpn: u64) -> Option<Translation> {
        self.map.get(&vpn).map(|m| Translation {
            pfn: m.pfn,
            writable: m.writable,
            global: m.global,
        })
    }

    fn walk_footprint(&self, vpn: u64) -> WalkFootprint {
        let li = vpn / ENTRIES_PER_TABLE;
        let mut fp = WalkFootprint::default();
        fp.push(PAddr::from_pfn(
            self.root_frame,
            (li % ENTRIES_PER_TABLE) * 8,
        ));
        // Unmapped region: the walker still reads the root entry before
        // discovering the absence.
        if let Some(leaf) = self.leaves.get(&li) {
            fp.push(PAddr::from_pfn(*leaf, (vpn % ENTRIES_PER_TABLE) * 8));
        }
        fp
    }
}

/// Convenience for tests and examples: the first virtual address of `vpn`.
pub fn vaddr_of_vpn(vpn: u64) -> VAddr {
    VAddr(vpn << tp_hw::types::PAGE_BITS)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vs() -> VSpace {
        VSpace::new(Asid(1), 10)
    }

    #[test]
    fn map_translate_roundtrip() {
        let mut v = vs();
        v.map(
            5,
            Mapping {
                pfn: 42,
                writable: true,
                global: false,
            },
            Some(11),
        )
        .unwrap();
        let t = v.translate(5).unwrap();
        assert_eq!(t.pfn, 42);
        assert!(t.writable);
        assert!(!t.global);
        assert_eq!(v.translate(6), None);
        assert_eq!(v.mapped_pages(), 1);
    }

    #[test]
    fn double_map_rejected() {
        let mut v = vs();
        let m = Mapping {
            pfn: 42,
            writable: true,
            global: false,
        };
        v.map(5, m, Some(11)).unwrap();
        assert_eq!(v.map(5, m, None), Err(MapError::AlreadyMapped { vpn: 5 }));
    }

    #[test]
    fn leaf_table_reuse_within_region() {
        let mut v = vs();
        let m = Mapping {
            pfn: 1,
            writable: false,
            global: false,
        };
        v.map(5, m, Some(11)).unwrap();
        assert!(v.has_leaf_for(6));
        // Same 512-page region: no new table frame needed.
        v.map(6, m, None).unwrap();
        // Different region: requires a frame.
        assert_eq!(v.map(600, m, None), Err(MapError::NoTableFrame));
        v.map(600, m, Some(12)).unwrap();
        assert_eq!(v.leaf_frames().collect::<Vec<_>>(), vec![11, 12]);
    }

    #[test]
    fn unmap() {
        let mut v = vs();
        v.map(
            5,
            Mapping {
                pfn: 42,
                writable: true,
                global: false,
            },
            Some(11),
        )
        .unwrap();
        let m = v.unmap(5).unwrap();
        assert_eq!(m.pfn, 42);
        assert_eq!(v.unmap(5), Err(MapError::NotMapped { vpn: 5 }));
        assert_eq!(v.translate(5), None);
    }

    #[test]
    fn walk_footprint_touches_root_then_leaf() {
        let mut v = vs();
        v.map(
            5,
            Mapping {
                pfn: 42,
                writable: true,
                global: false,
            },
            Some(11),
        )
        .unwrap();
        let fp = v.walk_footprint(5);
        assert_eq!(fp.len(), 2);
        let fp = fp.as_slice();
        assert_eq!(fp[0].pfn(), 10, "root frame first");
        assert_eq!(fp[1].pfn(), 11, "then leaf frame");
        assert_eq!(fp[1].page_offset(), 5 * 8);
        // Unmapped region: root only.
        assert_eq!(v.walk_footprint(5000).len(), 1);
    }

    #[test]
    fn footprints_of_distinct_vpns_differ() {
        let mut v = vs();
        let m = Mapping {
            pfn: 1,
            writable: false,
            global: false,
        };
        v.map(5, m, Some(11)).unwrap();
        v.map(6, m, None).unwrap();
        assert_ne!(v.walk_footprint(5), v.walk_footprint(6));
    }
}
