//! Kernel and time-protection configuration.
//!
//! [`TimeProtConfig`] switches each §4 mechanism independently, which is
//! what makes the E11 ablation possible: disable one mechanism and the
//! corresponding channel must reopen, demonstrating both that the
//! mechanism is necessary and that the checker has the power to see it.

use crate::ipc::EndpointSpec;
use crate::program::Program;
use tp_hw::obs::{mix_digest, OBS_DIGEST_SEED};
use tp_hw::types::Cycles;

/// Which time-protection mechanisms are active (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeProtConfig {
    /// Partition the shared LLC (and frame allocation) by page colouring
    /// (§4.1). Off = every domain allocates from all colours.
    pub colouring: bool,
    /// Flush core-local state (L1s, L2, TLB, predictors, prefetcher) on
    /// each *domain* switch — not on intra-domain switches (§4.2).
    pub flush_on_switch: bool,
    /// Also flush the shared LLC on domain switch — the fallback when
    /// colouring is off. Sound only with a single core (§4.1).
    pub flush_llc_on_switch: bool,
    /// Pad domain switches to `slice + pad` (§4.2); hides the
    /// history-dependent flush latency and kernel-entry jitter.
    pub pad_switch: bool,
    /// Partition interrupts: only the current domain's lines (plus the
    /// preemption timer) are unmasked (§4.2).
    pub irq_partition: bool,
    /// Give each domain a private kernel image in its own colours via
    /// kernel clone (§4.2). Off = all domains share image 0.
    pub kernel_clone: bool,
    /// Enforce deterministic IPC delivery per endpoint `min_delivery`
    /// thresholds (§3.2, Cock et al.).
    pub deterministic_ipc: bool,
}

impl TimeProtConfig {
    /// Everything on — full time protection as Ge et al. (2019) built it.
    pub fn full() -> Self {
        TimeProtConfig {
            colouring: true,
            flush_on_switch: true,
            flush_llc_on_switch: false, // colouring handles the LLC
            pad_switch: true,
            irq_partition: true,
            kernel_clone: true,
            deterministic_ipc: true,
        }
    }

    /// Everything off — a conventional kernel with memory protection only.
    pub fn off() -> Self {
        TimeProtConfig {
            colouring: false,
            flush_on_switch: false,
            flush_llc_on_switch: false,
            pad_switch: false,
            irq_partition: false,
            kernel_clone: false,
            deterministic_ipc: false,
        }
    }

    /// Fold the seven mechanism switches into a rolling FNV state, one
    /// bit per flag in declaration order — a leaf of the proof cache's
    /// content hash.
    pub fn fold_digest(&self, h: u64) -> u64 {
        let bits = [
            self.colouring,
            self.flush_on_switch,
            self.flush_llc_on_switch,
            self.pad_switch,
            self.irq_partition,
            self.kernel_clone,
            self.deterministic_ipc,
        ]
        .iter()
        .fold(0u64, |acc, &b| acc << 1 | b as u64);
        mix_digest(h, bits)
    }

    /// Full protection with one named mechanism disabled (ablation, E11).
    pub fn full_without(mechanism: Mechanism) -> Self {
        let mut c = TimeProtConfig::full();
        match mechanism {
            Mechanism::Colouring => c.colouring = false,
            Mechanism::Flush => c.flush_on_switch = false,
            Mechanism::Padding => c.pad_switch = false,
            Mechanism::IrqPartition => c.irq_partition = false,
            Mechanism::KernelClone => c.kernel_clone = false,
            Mechanism::DeterministicIpc => c.deterministic_ipc = false,
        }
        c
    }
}

/// The individual §4 mechanisms, for ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mechanism {
    /// LLC partitioning by page colouring.
    Colouring,
    /// Core-local flush on domain switch.
    Flush,
    /// Padded, constant-time domain switch.
    Padding,
    /// Interrupt partitioning and masking.
    IrqPartition,
    /// Per-domain kernel image.
    KernelClone,
    /// Cock-et-al. minimum-time IPC delivery.
    DeterministicIpc,
}

impl Mechanism {
    /// All mechanisms in a fixed order.
    pub const ALL: [Mechanism; 6] = [
        Mechanism::Colouring,
        Mechanism::Flush,
        Mechanism::Padding,
        Mechanism::IrqPartition,
        Mechanism::KernelClone,
        Mechanism::DeterministicIpc,
    ];
}

/// Specification of one domain at system-build time.
#[derive(Debug, Clone)]
pub struct DomainSpec {
    /// Time-slice length.
    pub slice: Cycles,
    /// Switch padding budget (see [`crate::domain::Domain::pad`]).
    pub pad: Cycles,
    /// Interrupt lines owned by this domain.
    pub irq_lines: Vec<u8>,
    /// Pages of private code mapped at [`crate::layout::CODE_BASE`].
    pub code_pages: u64,
    /// Pages of private data mapped at [`crate::layout::DATA_BASE`].
    pub data_pages: u64,
    /// The program to run.
    pub program: Box<dyn Program>,
    /// Optional interim process run during this domain's switch padding
    /// (§4.3). `None` = busy-loop padding.
    pub pad_filler: Option<Box<dyn Program>>,
    /// Preemption margin for the filler (how long before the pad target
    /// it must stop). Ignored without a filler.
    pub filler_margin: Cycles,
}

impl DomainSpec {
    /// A spec with sensible defaults around `program`.
    pub fn new(program: Box<dyn Program>) -> Self {
        DomainSpec {
            slice: Cycles(20_000),
            pad: Cycles(30_000),
            irq_lines: Vec::new(),
            code_pages: 4,
            data_pages: 16,
            program,
            pad_filler: None,
            filler_margin: Cycles(15_000),
        }
    }

    /// Builder-style interim-process installation (§4.3).
    pub fn with_pad_filler(mut self, filler: Box<dyn Program>, margin: Cycles) -> Self {
        self.pad_filler = Some(filler);
        self.filler_margin = margin;
        self
    }

    /// Builder-style slice override.
    pub fn with_slice(mut self, slice: Cycles) -> Self {
        self.slice = slice;
        self
    }

    /// Builder-style pad override.
    pub fn with_pad(mut self, pad: Cycles) -> Self {
        self.pad = pad;
        self
    }

    /// Builder-style data-size override.
    pub fn with_data_pages(mut self, pages: u64) -> Self {
        self.data_pages = pages;
        self
    }

    /// Builder-style code-size override. Smaller code warms the L1I
    /// sooner (the PC wraps within the code window).
    pub fn with_code_pages(mut self, pages: u64) -> Self {
        self.code_pages = pages;
        self
    }

    /// Builder-style IRQ-line assignment.
    pub fn with_irq_lines(mut self, lines: Vec<u8>) -> Self {
        self.irq_lines = lines;
        self
    }

    /// Content hash of everything that shapes this domain's behaviour,
    /// or `None` when its program (or pad filler) cannot fingerprint
    /// itself ([`Program::content_fingerprint`]). Every field of the
    /// spec is folded with a leading tag, so e.g. swapping `slice` and
    /// `pad` values cannot collide.
    pub fn content_fingerprint(&self) -> Option<u64> {
        let mut h = mix_digest(mix_digest(OBS_DIGEST_SEED, 1), self.slice.0);
        h = mix_digest(mix_digest(h, 2), self.pad.0);
        h = mix_digest(mix_digest(h, 3), self.irq_lines.len() as u64);
        for &line in &self.irq_lines {
            h = mix_digest(h, line as u64);
        }
        h = mix_digest(mix_digest(h, 4), self.code_pages);
        h = mix_digest(mix_digest(h, 5), self.data_pages);
        h = mix_digest(mix_digest(h, 6), self.program.content_fingerprint()?);
        h = match &self.pad_filler {
            None => mix_digest(h, 7),
            Some(p) => mix_digest(mix_digest(h, 8), p.content_fingerprint()?),
        };
        Some(mix_digest(mix_digest(h, 9), self.filler_margin.0))
    }
}

/// Full kernel configuration.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// The domains, scheduled round-robin in index order.
    pub domains: Vec<DomainSpec>,
    /// Endpoint table.
    pub endpoints: Vec<EndpointSpec>,
    /// Active time-protection mechanisms.
    pub tp: TimeProtConfig,
    /// Whether a `Send` to an endpoint with a blocked receiver switches
    /// domains immediately (the Figure-1 pipeline structure). When off,
    /// domains only switch on the preemption timer.
    pub ipc_switch: bool,
    /// Number of LLC colours reserved for the kernel (global data and
    /// the shared image) when colouring is on.
    pub kernel_colours: usize,
}

impl KernelConfig {
    /// A config over `domains` with full time protection.
    pub fn new(domains: Vec<DomainSpec>) -> Self {
        KernelConfig {
            domains,
            endpoints: Vec::new(),
            tp: TimeProtConfig::full(),
            ipc_switch: false,
            kernel_colours: 4,
        }
    }

    /// Builder-style protection override.
    pub fn with_tp(mut self, tp: TimeProtConfig) -> Self {
        self.tp = tp;
        self
    }

    /// Builder-style endpoint table.
    pub fn with_endpoints(mut self, endpoints: Vec<EndpointSpec>) -> Self {
        self.endpoints = endpoints;
        self
    }

    /// Builder-style IPC-switching toggle.
    pub fn with_ipc_switch(mut self, on: bool) -> Self {
        self.ipc_switch = on;
        self
    }

    /// Content hash of the whole kernel configuration — domains (with
    /// their programs), endpoint thresholds, protection switches,
    /// IPC-switch policy and kernel colours — or `None` if any program
    /// is unfingerprintable. Two configurations with equal fingerprints
    /// build behaviourally identical systems, which is the invariant
    /// the proof cache's content addressing rests on.
    pub fn content_fingerprint(&self) -> Option<u64> {
        let mut h = mix_digest(OBS_DIGEST_SEED, self.domains.len() as u64);
        for d in &self.domains {
            h = mix_digest(h, d.content_fingerprint()?);
        }
        h = mix_digest(h, self.endpoints.len() as u64);
        for ep in &self.endpoints {
            h = match ep.min_delivery {
                None => mix_digest(h, 1),
                Some(c) => mix_digest(mix_digest(h, 2), c.0),
            };
        }
        h = self.tp.fold_digest(h);
        h = mix_digest(h, self.ipc_switch as u64);
        Some(mix_digest(h, self.kernel_colours as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::IdleProgram;

    #[test]
    fn full_without_disables_exactly_one() {
        for m in Mechanism::ALL {
            let c = TimeProtConfig::full_without(m);
            assert_ne!(c, TimeProtConfig::full());
            let flags = |c: TimeProtConfig| {
                [
                    c.colouring,
                    c.flush_on_switch,
                    c.pad_switch,
                    c.irq_partition,
                    c.kernel_clone,
                    c.deterministic_ipc,
                ]
            };
            let diff = flags(c)
                .iter()
                .zip(flags(TimeProtConfig::full()).iter())
                .filter(|(a, b)| a != b)
                .count();
            assert_eq!(diff, 1, "exactly one flag differs for {m:?}");
        }
    }

    #[test]
    fn builders_compose() {
        let spec = DomainSpec::new(Box::new(IdleProgram))
            .with_slice(Cycles(5000))
            .with_pad(Cycles(100))
            .with_data_pages(2)
            .with_irq_lines(vec![4]);
        assert_eq!(spec.slice, Cycles(5000));
        assert_eq!(spec.pad, Cycles(100));
        assert_eq!(spec.data_pages, 2);
        assert_eq!(spec.irq_lines, vec![4]);
        let cfg = KernelConfig::new(vec![spec])
            .with_tp(TimeProtConfig::off())
            .with_ipc_switch(true);
        assert!(cfg.ipc_switch);
        assert_eq!(cfg.tp, TimeProtConfig::off());
    }

    #[test]
    fn kernel_fingerprint_tracks_every_field() {
        let base = || KernelConfig::new(vec![DomainSpec::new(Box::new(IdleProgram))]);
        let fp = |c: &KernelConfig| c.content_fingerprint().unwrap();
        assert_eq!(fp(&base()), fp(&base()), "equal configs hash equally");

        let mut tweaked: Vec<KernelConfig> = vec![
            base().with_tp(TimeProtConfig::off()),
            base().with_ipc_switch(true),
            base().with_endpoints(vec![EndpointSpec { min_delivery: None }]),
            base().with_endpoints(vec![EndpointSpec {
                min_delivery: Some(Cycles(100)),
            }]),
        ];
        let mut c = base();
        c.kernel_colours = 5;
        tweaked.push(c);
        let mut c = base();
        c.domains[0].slice = Cycles(c.domains[0].slice.0 + 1);
        tweaked.push(c);
        let mut c = base();
        c.domains[0].pad = Cycles(c.domains[0].pad.0 + 1);
        tweaked.push(c);
        let mut c = base();
        c.domains[0].irq_lines.push(3);
        tweaked.push(c);
        let mut c = base();
        c.domains[0].data_pages += 1;
        tweaked.push(c);
        let mut c = base();
        c.domains[0].program = Box::new(crate::program::TraceProgram::new(vec![]));
        tweaked.push(c);
        for m in Mechanism::ALL {
            tweaked.push(base().with_tp(TimeProtConfig::full_without(m)));
        }
        let reference = fp(&base());
        let mut seen = std::collections::BTreeSet::from([reference]);
        for t in &tweaked {
            let f = fp(t);
            assert_ne!(f, reference, "perturbation must change the hash: {t:?}");
            assert!(
                seen.insert(f),
                "distinct perturbations must not collide: {t:?}"
            );
        }
    }

    /// One unfingerprintable program poisons the whole configuration —
    /// the cache must treat such cells as uncacheable, never guess.
    #[test]
    fn opaque_programs_make_configs_unfingerprintable() {
        #[derive(Debug, Clone)]
        struct Opaque;
        impl Program for Opaque {
            fn next(&mut self, _: &crate::program::StepFeedback) -> crate::program::Instr {
                crate::program::Instr::Halt
            }
        }
        let cfg = KernelConfig::new(vec![
            DomainSpec::new(Box::new(IdleProgram)),
            DomainSpec::new(Box::new(Opaque)),
        ]);
        assert_eq!(cfg.content_fingerprint(), None);
        let filler =
            DomainSpec::new(Box::new(IdleProgram)).with_pad_filler(Box::new(Opaque), Cycles(10));
        assert_eq!(KernelConfig::new(vec![filler]).content_fingerprint(), None);
    }
}
