//! Fixed virtual-memory layout for domain programs.
//!
//! Every domain sees the same virtual layout (as processes do under any
//! sane OS): code at [`CODE_BASE`], private data at [`DATA_BASE`]. The
//! *physical* placement behind these windows is what time protection is
//! about — the kernel backs them with frames from the domain's colours.

use tp_hw::types::{VAddr, PAGE_BITS};

/// Base virtual address of a domain's code.
pub const CODE_BASE: VAddr = VAddr(0x1000_0000);

/// Base virtual address of a domain's private data.
pub const DATA_BASE: VAddr = VAddr(0x2000_0000);

/// Virtual page number of [`CODE_BASE`].
pub const CODE_VPN: u64 = CODE_BASE.0 >> PAGE_BITS;

/// Virtual page number of [`DATA_BASE`].
pub const DATA_VPN: u64 = DATA_BASE.0 >> PAGE_BITS;

/// The `i`-th byte of the domain's data window.
pub fn data_addr(offset: u64) -> VAddr {
    VAddr(DATA_BASE.0 + offset)
}

/// The `i`-th byte of the domain's code window.
pub fn code_addr(offset: u64) -> VAddr {
    VAddr(CODE_BASE.0 + offset)
}

#[cfg(test)]
mod tests {
    use super::*;

    // A 1 MiB code window must never run into the data window; checked
    // at compile time since every term is a constant.
    const _: () = assert!(CODE_BASE.0 + (1 << 20) <= DATA_BASE.0);

    #[test]
    fn windows_do_not_overlap() {
        assert_eq!(data_addr(0x40), VAddr(0x2000_0040));
        assert_eq!(code_addr(4), VAddr(0x1000_0004));
        assert_eq!(CODE_VPN, 0x10000);
        assert_eq!(DATA_VPN, 0x20000);
    }
}
