//! Property-based tests for the kernel substrate: allocator soundness,
//! address-space containment, schedule determinism and the padding grid.

use proptest::prelude::*;

use tp_hw::machine::MachineConfig;
use tp_hw::mem::PhysMem;
use tp_hw::types::{Colour, Cycles, DomainTag};
use tp_kernel::colour::ColourAllocator;
use tp_kernel::config::{DomainSpec, KernelConfig, TimeProtConfig};
use tp_kernel::kernel::{SwitchReason, System};
use tp_kernel::layout::data_addr;
use tp_kernel::program::{IdleProgram, Instr, TraceProgram};

proptest! {
    /// Every frame the allocator hands out has the requested colour, is
    /// marked owned, and is never handed out twice (without a release).
    #[test]
    fn allocator_soundness(
        requests in prop::collection::vec((0u16..8, 0u16..3), 1..120),
    ) {
        let mut alloc = ColourAllocator::new(256, 8, 0);
        let mut mem = PhysMem::new(256);
        let mut seen = std::collections::HashSet::new();
        for (colour, owner) in requests {
            match alloc.alloc_coloured(&mut mem, Colour(colour), DomainTag(owner)) {
                Ok(pfn) => {
                    prop_assert_eq!(pfn % 8, colour as u64);
                    prop_assert!(seen.insert(pfn), "frame {} double-allocated", pfn);
                    prop_assert_eq!(
                        mem.owner_of(tp_hw::types::PAddr::from_pfn(pfn, 0)),
                        Some(DomainTag(owner))
                    );
                }
                Err(_) => {
                    // Exhaustion is acceptable; 32 frames per colour.
                    prop_assert!(alloc.free_in(Colour(colour)) == 0);
                }
            }
        }
    }

    /// Alloc/release round-trips conserve the free count.
    #[test]
    fn allocator_release_conserves(
        rounds in prop::collection::vec(0u16..8, 1..60),
    ) {
        let mut alloc = ColourAllocator::new(64, 8, 0);
        let mut mem = PhysMem::new(64);
        let total: usize = (0..8).map(|c| alloc.free_in(Colour(c))).sum();
        for colour in rounds {
            if let Ok(pfn) = alloc.alloc_coloured(&mut mem, Colour(colour), DomainTag(0)) {
                alloc.release(&mut mem, pfn);
            }
            let now: usize = (0..8).map(|c| alloc.free_in(Colour(c))).sum();
            prop_assert_eq!(now, total);
        }
    }

    /// Under full protection, every frame of every domain (code, data,
    /// page tables, kernel clone) has a colour from that domain's set —
    /// across arbitrary domain counts and sizes.
    #[test]
    fn system_construction_respects_colours(
        sizes in prop::collection::vec((1u64..6, 1u64..10), 1..4),
    ) {
        let domains: Vec<DomainSpec> = sizes
            .iter()
            .map(|(code, data)| {
                DomainSpec::new(Box::new(IdleProgram))
                    .with_code_pages(*code)
                    .with_data_pages(*data)
            })
            .collect();
        let kcfg = KernelConfig::new(domains);
        let sys = System::new(MachineConfig::single_core(), kcfg).unwrap();
        let colours = sys.hw.config().llc.unwrap().colours() as u64;
        for (pfn, info) in sys.hw.mem.iter() {
            if let Some(owner) = info.owner {
                let colour = Colour((pfn % colours) as u16);
                let allowed = if owner == DomainTag::KERNEL {
                    sys.kernel.kernel_colours.contains(&colour)
                } else {
                    sys.kernel.colour_assignment[owner.0 as usize].contains(&colour)
                };
                prop_assert!(allowed, "frame {} of {} has colour {:?}", pfn, owner, colour);
            }
        }
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The padded slice grid is arithmetic regardless of what programs
    /// do: timer-switch completions land at exact multiples.
    #[test]
    fn padding_grid_is_arithmetic(
        stores in 0u64..120,
        computes in 0u64..60,
    ) {
        let prog = TraceProgram::new(
            (0..stores)
                .map(|i| Instr::Store(data_addr(i * 64 % (8 * 4096))))
                .chain((0..computes).map(|u| Instr::Compute(u % 50 + 1)))
                .collect(),
        );
        let kcfg = KernelConfig::new(vec![
            DomainSpec::new(Box::new(prog)).with_slice(Cycles(40_000)).with_pad(Cycles(40_000)),
            DomainSpec::new(Box::new(IdleProgram)).with_slice(Cycles(40_000)).with_pad(Cycles(40_000)),
        ]);
        let mut sys = System::new(MachineConfig::single_core(), kcfg).unwrap();
        sys.run_cycles(Cycles(500_000), 400_000);
        for (k, rec) in sys
            .kernel
            .switch_log
            .iter()
            .filter(|r| r.reason == SwitchReason::Timer)
            .enumerate()
        {
            prop_assert_eq!(rec.completed_at.0, (k as u64 + 1) * 80_000);
            prop_assert_eq!(rec.overrun, None);
        }
        prop_assert!(sys.kernel.switch_log.len() >= 3);
    }

    /// Replay determinism for arbitrary programs: the whole system is a
    /// pure function of its configuration.
    #[test]
    fn system_replay_determinism(
        instrs in prop::collection::vec(0u8..5, 1..80),
        tp_on in any::<bool>(),
    ) {
        let prog = TraceProgram::new(
            instrs
                .iter()
                .enumerate()
                .map(|(i, k)| match k {
                    0 => Instr::Load(data_addr((i as u64 * 64) % (4 * 4096))),
                    1 => Instr::Store(data_addr((i as u64 * 128) % (4 * 4096))),
                    2 => Instr::Compute(i as u64 % 30 + 1),
                    3 => Instr::ReadClock,
                    _ => Instr::Branch {
                        taken: i % 2 == 0,
                        target: tp_kernel::layout::code_addr((i as u64 * 4) % 4096),
                    },
                })
                .collect(),
        );
        let tp = if tp_on { TimeProtConfig::full() } else { TimeProtConfig::off() };
        let run = || {
            let kcfg = KernelConfig::new(vec![
                DomainSpec::new(Box::new(prog.clone())),
                DomainSpec::new(Box::new(IdleProgram)),
            ])
            .with_tp(tp);
            let mut sys = System::new(MachineConfig::single_core(), kcfg).unwrap();
            sys.run_cycles(Cycles(200_000), 100_000);
            (sys.now(), sys.hw.machine_digest())
        };
        prop_assert_eq!(run(), run());
    }

    /// Faulting programs never wedge the system: arbitrary (possibly
    /// wild) addresses still let the schedule proceed.
    #[test]
    fn wild_addresses_cannot_wedge_the_kernel(
        addrs in prop::collection::vec(any::<u64>(), 1..40),
    ) {
        let prog = TraceProgram::new(
            addrs.iter().map(|a| Instr::Load(tp_hw::types::VAddr(*a))).collect(),
        );
        let kcfg = KernelConfig::new(vec![
            DomainSpec::new(Box::new(prog)),
            DomainSpec::new(Box::new(IdleProgram)),
        ]);
        let mut sys = System::new(MachineConfig::single_core(), kcfg).unwrap();
        sys.run_cycles(Cycles(300_000), 200_000);
        prop_assert!(
            !sys.kernel.switch_log.is_empty(),
            "schedule must continue past faults"
        );
    }
}
