//! End-to-end integration tests spanning all crates: the paper's claims
//! as executable assertions, via the umbrella crate's public API only.

use time_protection::attacks::experiments as exp;
use time_protection::core::noninterference::NiScenario;
use time_protection::core::{check_noninterference, default_time_models, prove};
use time_protection::hw::clock::TimeModel;
use time_protection::hw::machine::MachineConfig;
use time_protection::hw::types::Cycles;
use time_protection::kernel::config::{DomainSpec, KernelConfig, Mechanism, TimeProtConfig};
use time_protection::kernel::domain::DomainId;
use time_protection::kernel::layout::data_addr;
use time_protection::kernel::program::{Instr, TraceProgram};

fn basic_scenario(tp: TimeProtConfig) -> NiScenario {
    NiScenario {
        mcfg: MachineConfig::single_core(),
        make_kcfg: Box::new(move |secret| {
            let hi = TraceProgram::new(
                (0..secret * 40)
                    .map(|i| Instr::Store(data_addr((i * 64) % (16 * 4096))))
                    .collect(),
            );
            let mut lo = Vec::new();
            for _ in 0..25 {
                for i in 0..24 {
                    lo.push(Instr::Load(data_addr(i * 64)));
                }
                lo.push(Instr::ReadClock);
            }
            lo.push(Instr::Halt);
            KernelConfig::new(vec![
                DomainSpec::new(Box::new(hi))
                    .with_slice(Cycles(20_000))
                    .with_pad(Cycles(30_000)),
                DomainSpec::new(Box::new(TraceProgram::new(lo)))
                    .with_slice(Cycles(20_000))
                    .with_pad(Cycles(30_000)),
            ])
            .with_tp(tp)
        }),
        lo: DomainId(1),
        secrets: vec![0, 4, 9],
        budget: Cycles(900_000),
        max_steps: 300_000,
    }
}

#[test]
fn headline_claim_proof_succeeds_with_full_protection() {
    let report = prove(
        &basic_scenario(TimeProtConfig::full()),
        &default_time_models(),
    );
    assert!(report.time_protection_proved(), "{report}");
    assert!(report.interconnect_is_only_gap());
}

#[test]
fn headline_claim_unprotected_system_has_a_witness() {
    let verdict = check_noninterference(&basic_scenario(TimeProtConfig::off()));
    assert!(!verdict.passed());
}

#[test]
fn proof_is_time_model_independent() {
    // §5.1: the proof may not depend on latency values. Try an extra,
    // deliberately weird family of hashed models.
    let models: Vec<TimeModel> = (100..106).map(TimeModel::hashed).collect();
    let report = prove(&basic_scenario(TimeProtConfig::full()), &models);
    assert!(report.time_protection_proved(), "{report}");
}

#[test]
fn every_mechanism_ablation_leaks_in_the_canonical_scenario() {
    for m in Mechanism::ALL {
        let verdict = check_noninterference(&tp_bench::canonical_scenario(Some(m)));
        assert!(!verdict.passed(), "disabling {m:?} must reopen a channel");
    }
    let verdict = check_noninterference(&tp_bench::canonical_scenario(None));
    assert!(verdict.passed(), "{verdict}");
}

#[test]
fn e2_capacity_contrast() {
    let symbols = [3usize, 21, 42, 60];
    let open = exp::e2_l1_prime_probe(TimeProtConfig::off(), &symbols, TimeModel::intel_like());
    let shut = exp::e2_l1_prime_probe(TimeProtConfig::full(), &symbols, TimeModel::intel_like());
    assert!(
        open.capacity(100) > 1.9,
        "open capacity {}",
        open.capacity(100)
    );
    assert!(
        shut.capacity(100) < 1e-6,
        "closed capacity {}",
        shut.capacity(100)
    );
}

#[test]
fn figure1_delivery_contrast() {
    let secrets = [0u64, 0xffff, u64::MAX];
    let leaky = exp::e1_series(false, &secrets, TimeModel::intel_like());
    let fixed = exp::e1_series(true, &secrets, TimeModel::intel_like());
    assert!(leaky[0].1 < leaky[2].1);
    assert_eq!(fixed[0].1, fixed[2].1);
}

#[test]
fn interconnect_channel_remains_under_full_protection() {
    let stats = exp::e10_interconnect(None, TimeModel::intel_like());
    assert!(stats.busy_median > stats.quiet_median);
}

#[test]
fn aisa_report_matches_paper_scope() {
    let r = time_protection::hw::check_conformance(&MachineConfig::dual_core());
    assert!(!r.conformant());
    assert!(r.conformant_modulo_interconnect());
    assert_eq!(
        r.violations(),
        vec![time_protection::hw::Resource::Interconnect]
    );
}

#[test]
fn three_domain_pairwise_noninterference() {
    // The paper's policy-agnostic setting (§2, no Bell–LaPadula):
    // pairwise NI must hold for every observer among three mutually
    // distrusting domains. Fix one observer at a time; the other two
    // vary with the secret.
    for observer in 0..3usize {
        let scenario = NiScenario {
            mcfg: MachineConfig::single_core(),
            make_kcfg: Box::new(move |secret| {
                let mk = |is_observer: bool, salt: u64| -> DomainSpec {
                    let prog: TraceProgram = if is_observer {
                        let mut v = Vec::new();
                        for _ in 0..15 {
                            for i in 0..16 {
                                v.push(Instr::Load(data_addr(i * 64)));
                            }
                            v.push(Instr::ReadClock);
                        }
                        v.push(Instr::Halt);
                        TraceProgram::new(v)
                    } else {
                        TraceProgram::new(
                            (0..(secret + salt) * 24)
                                .map(|i| Instr::Store(data_addr((i * 64) % (8 * 4096))))
                                .collect(),
                        )
                    };
                    DomainSpec::new(Box::new(prog))
                        .with_slice(Cycles(15_000))
                        .with_pad(Cycles(25_000))
                };
                KernelConfig::new((0..3).map(|d| mk(d == observer, d as u64)).collect())
                    .with_tp(TimeProtConfig::full())
            }),
            lo: DomainId(observer),
            secrets: vec![0, 5],
            budget: Cycles(800_000),
            max_steps: 300_000,
        };
        let verdict = check_noninterference(&scenario);
        assert!(verdict.passed(), "observer {observer}: {verdict}");
    }
}

#[test]
fn exhaustive_small_scope_via_public_api() {
    use time_protection::core::exhaustive::{check_exhaustive, ExhaustiveConfig};
    let v = check_exhaustive(&ExhaustiveConfig {
        max_len: 2,
        ..ExhaustiveConfig::small(TimeProtConfig::full())
    });
    assert!(v.passed(), "{v}");
}

#[test]
fn recommended_pad_composes_with_the_proof() {
    // Use the WCET tool to pick the pad, then prove the system.
    let mcfg = MachineConfig::single_core();
    let pad = time_protection::core::recommended_pad(&mcfg, false);
    let scenario = NiScenario {
        mcfg,
        make_kcfg: Box::new(move |secret| {
            let hi = TraceProgram::new(
                (0..secret * 30)
                    .map(|i| Instr::Store(data_addr((i * 64) % (16 * 4096))))
                    .collect(),
            );
            let lo = TraceProgram::new(
                std::iter::repeat_n([Instr::Load(data_addr(0)), Instr::ReadClock], 40)
                    .flatten()
                    .chain([Instr::Halt])
                    .collect(),
            );
            KernelConfig::new(vec![
                DomainSpec::new(Box::new(hi))
                    .with_slice(Cycles(20_000))
                    .with_pad(pad),
                DomainSpec::new(Box::new(lo))
                    .with_slice(Cycles(20_000))
                    .with_pad(pad),
            ])
            .with_tp(TimeProtConfig::full())
        }),
        lo: DomainId(1),
        secrets: vec![0, 6],
        budget: Cycles(1_200_000),
        max_steps: 400_000,
    };
    let report = prove(&scenario, &default_time_models()[..2]);
    assert!(report.time_protection_proved(), "{report}");
    assert!(report.t.holds());
}

#[test]
fn determinism_across_reconstruction() {
    // The entire stack must be deterministic, or the checker is unsound.
    let run = || {
        let sc = basic_scenario(TimeProtConfig::full());
        let kcfg = (sc.make_kcfg)(7);
        let mut sys = time_protection::kernel::System::new(sc.mcfg.clone(), kcfg).expect("system");
        sys.run_cycles(Cycles(400_000), 200_000);
        (
            sys.now(),
            sys.hw.machine_digest(),
            sys.observation(DomainId(1)).events.clone(),
        )
    };
    assert_eq!(run(), run());
}
