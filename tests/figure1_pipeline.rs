//! The complete Figure-1 pipeline as a three-domain system:
//!
//! ```text
//!   [Hi] web server --ep0--> [Hi] encryption --ep1--> [Lo] network stack
//! ```
//!
//! The web server holds the secret; the encryption domain is the
//! *downgrader* (trusted to declassify ciphertext); the network stack is
//! public. Two channels threaten the pipeline (§3.2): the server's
//! message timing into the crypto domain, and the crypto domain's
//! secret-dependent encryption time into the network domain. With
//! deterministic delivery on both endpoints, the network stack's
//! observations are identical for every secret.

use time_protection::core::check_noninterference;
use time_protection::core::noninterference::NiScenario;
use time_protection::hw::machine::MachineConfig;
use time_protection::hw::types::Cycles;
use time_protection::kernel::config::{DomainSpec, KernelConfig, TimeProtConfig};
use time_protection::kernel::domain::DomainId;
use time_protection::kernel::ipc::EndpointSpec;
use time_protection::kernel::program::{Instr, SyscallReq, TraceProgram};
use time_protection::kernel::System;

/// The web server: "processes a request" for a secret-dependent time,
/// then hands the plaintext to the crypto domain.
fn web_server(secret: u64) -> TraceProgram {
    let mut v = Vec::new();
    for i in 0..32 {
        v.push(Instr::Compute(20));
        if secret >> (i % 64) & 1 == 1 {
            v.push(Instr::Compute(60));
        }
    }
    v.push(Instr::Syscall(SyscallReq::Send {
        ep: 0,
        msg: 0x0071_a171_7e77,
    }));
    v.push(Instr::Halt);
    TraceProgram::new(v)
}

/// The encryption downgrader: receives the plaintext, "encrypts" it with
/// secret-dependent square-and-multiply time, then publishes ciphertext.
fn encryptor(secret: u64) -> TraceProgram {
    let mut v = Vec::new();
    v.push(Instr::Syscall(SyscallReq::Recv { ep: 0 }));
    for i in 0..48 {
        v.push(Instr::Compute(25));
        if secret >> (i % 64) & 1 == 1 {
            v.push(Instr::Compute(75));
        }
    }
    v.push(Instr::Syscall(SyscallReq::Send {
        ep: 1,
        msg: 0xc1f3_e27e,
    }));
    v.push(Instr::Halt);
    TraceProgram::new(v)
}

/// The network stack: receives ciphertext; its observation (delivery
/// time) is what a remote attacker sees.
fn network() -> TraceProgram {
    TraceProgram::new(vec![
        Instr::Syscall(SyscallReq::Recv { ep: 1 }),
        Instr::ReadClock,
        Instr::Halt,
    ])
}

fn pipeline(tp: TimeProtConfig, min_delivery: Option<Cycles>) -> NiScenario {
    NiScenario {
        mcfg: MachineConfig::single_core(),
        make_kcfg: Box::new(move |secret| {
            KernelConfig::new(vec![
                // Receivers first so they are blocked when senders fire.
                DomainSpec::new(Box::new(network()))
                    .with_slice(Cycles(12_000))
                    .with_pad(Cycles(25_000)),
                DomainSpec::new(Box::new(encryptor(secret)))
                    .with_slice(Cycles(25_000))
                    .with_pad(Cycles(25_000)),
                DomainSpec::new(Box::new(web_server(secret)))
                    .with_slice(Cycles(25_000))
                    .with_pad(Cycles(25_000)),
            ])
            .with_tp(tp)
            .with_ipc_switch(true)
            .with_endpoints(vec![
                EndpointSpec { min_delivery },
                EndpointSpec { min_delivery },
            ])
        }),
        lo: DomainId(0),
        secrets: vec![0, 0xffff, u64::MAX],
        budget: Cycles(1_200_000),
        max_steps: 500_000,
    }
}

#[test]
fn protected_pipeline_delivers_and_does_not_leak() {
    let sc = pipeline(TimeProtConfig::full(), Some(Cycles(22_000)));
    // Functional check: ciphertext actually arrives.
    let kcfg = (sc.make_kcfg)(u64::MAX);
    let mut sys = System::new(sc.mcfg.clone(), kcfg).unwrap();
    sys.run_cycles(Cycles(1_200_000), 500_000);
    let recvs = sys.observation(DomainId(0)).ipc_recvs();
    assert_eq!(recvs.len(), 1, "ciphertext must reach the network stack");
    assert_eq!(recvs[0].0, 0xc1f3_e27e);
    // Security check: the remote observer learns nothing.
    let verdict = check_noninterference(&sc);
    assert!(verdict.passed(), "{verdict}");
}

#[test]
fn unprotected_pipeline_leaks_through_two_hops() {
    // Even with the secret two IPC hops away from the observer, the
    // send-time chain carries it to the network stack.
    let sc = pipeline(TimeProtConfig::off(), None);
    let verdict = check_noninterference(&sc);
    assert!(
        !verdict.passed(),
        "two-hop pipeline must leak without protection"
    );
}

#[test]
fn pipeline_message_data_flows_while_timing_does_not() {
    // The downgrader pattern: data *may* cross (that's its job), but
    // under protection the only Lo-visible variation is the payload the
    // policy allows — identical here, so traces match exactly.
    let sc = pipeline(TimeProtConfig::full(), Some(Cycles(22_000)));
    for secret in [0u64, u64::MAX] {
        let kcfg = (sc.make_kcfg)(secret);
        let mut sys = System::new(sc.mcfg.clone(), kcfg).unwrap();
        sys.run_cycles(Cycles(1_200_000), 500_000);
        let recvs = sys.observation(DomainId(0)).ipc_recvs();
        assert_eq!(recvs.len(), 1, "secret {secret}");
    }
}
